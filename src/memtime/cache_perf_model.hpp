// Per-level cache access-time model (DESIGN.md §16).
//
// Replaces the single `latency_cycles` scalar per cache level with the
// Sniper-style split: a tag-array access time and a data-array access
// time, composed under one of two lookup disciplines:
//
//   * kSequential — the tag array is read first and the data array only
//     on a hit: hit = tags + data, miss = tags.  This is also the exact
//     shape of the legacy scalar model (tags = scalar, data = 0), which is
//     what makes timing-off identity provable (see mem_time.hpp).
//   * kParallel — tag and data arrays are read concurrently (the common
//     L1 design): a hit costs the data access (assumed to cover the tag
//     read), a miss costs nothing at this level — the time is hidden
//     under the next level's access.
//
// CachePerfModel precomputes the two charged latencies so the hierarchy's
// replay loop hoists them as plain integers, exactly as it hoisted the
// legacy scalars.
#pragma once

#include <cstdint>

namespace stac::memtime {

/// Tag/data lookup discipline (Sniper's CACHE_PERF_MODEL_{PARALLEL,
/// SEQUENTIAL}).
enum class LookupMode : std::uint8_t { kSequential = 0, kParallel };

/// One level's access-time description.
struct CachePerfSpec {
  std::uint32_t tags_cycles = 0;
  std::uint32_t data_cycles = 0;
  LookupMode mode = LookupMode::kSequential;

  /// The legacy scalar model: every traversal of the level — hit or miss —
  /// costs `scalar` cycles.  Sequential with data = 0 reproduces it.
  [[nodiscard]] static CachePerfSpec flat(std::uint32_t scalar) {
    return CachePerfSpec{scalar, 0, LookupMode::kSequential};
  }
};

/// Value type holding the two precomputed charge latencies for one level.
class CachePerfModel {
 public:
  CachePerfModel() = default;
  explicit CachePerfModel(const CachePerfSpec& spec)
      : hit_cycles_(spec.mode == LookupMode::kSequential
                        ? spec.tags_cycles + spec.data_cycles
                        : spec.data_cycles),
        miss_cycles_(spec.mode == LookupMode::kSequential ? spec.tags_cycles
                                                          : 0) {}

  /// Cycles charged when the level serves the access (tags + data).
  [[nodiscard]] std::uint32_t hit_cycles() const { return hit_cycles_; }
  /// Cycles charged when the access falls through to the next level.
  [[nodiscard]] std::uint32_t miss_cycles() const { return miss_cycles_; }
  /// True when hit and miss charge the same constant — the legacy shape.
  [[nodiscard]] bool flat() const { return hit_cycles_ == miss_cycles_; }

 private:
  std::uint32_t hit_cycles_ = 0;
  std::uint32_t miss_cycles_ = 0;
};

}  // namespace stac::memtime

// Closed-loop online serving demo: live traffic in, STAP timeouts out.
//
//   1. Calibrate a StacManager offline (trimmed budgets, as quickstart).
//   2. Publish its model as the first ServingModel bundle.
//   3. Start the serving runtime: shard producer threads replay a
//      time-varying query stream into the lock-free ingest ring while the
//      OnlineController drains it, re-estimates conditions, and re-plans
//      the timeout vector every control epoch — steering the very traffic
//      the next epoch observes (boosted queries finish faster).
//   4. Mid-run, a background thread refits a new bundle and hot-swaps it
//      in; admission never stalls.
//
// Run:          ./build/examples/serve_demo
// Soak mode:    ./build/examples/serve_demo --soak 10
//   paces the simulated clock to run >= N wall seconds of closed loop and
//   exits nonzero unless the run was clean (zero ingest drops, zero
//   watchdog force-revokes) — the CI serve-soak gate greps its last line.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "cat/cat_controller.hpp"
#include "serve/online_controller.hpp"
#include "serve/traffic_replay.hpp"

using namespace stac;

namespace {

core::StacOptions demo_options() {
  core::StacOptions opts;
  opts.profile_budget = 6;
  opts.profiler.target_completions = 300;
  opts.profiler.warmup_completions = 40;
  opts.profiler.max_windows = 1;
  opts.profiler.accesses_per_sample = 800;
  opts.model.deep_forest.mgs.window_sizes = {5};
  opts.model.deep_forest.mgs.estimators = 8;
  opts.model.deep_forest.cascade.levels = 1;
  opts.model.deep_forest.cascade.estimators = 12;
  opts.predictor.sim_queries = 2000;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  double soak_wall_seconds = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--soak") == 0 && i + 1 < argc) {
      soak_wall_seconds = std::atof(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0] << " [--soak WALL_SECONDS]\n";
      return 2;
    }
  }

  std::cout << "== stac serve_demo: closed-loop STAP control over a live "
               "stream ==\n\n";

  // Offline: calibrate once (the serving runtime never blocks on this).
  const core::StacOptions opts = demo_options();
  core::StacManager mgr(opts);
  std::cout << "calibrating k-means + Redis (trimmed budgets)...\n";
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);
  std::cout << "  " << mgr.library().size() << " profiles, primary model "
            << (mgr.primary_model_degraded() ? "DEGRADED" : "trained")
            << "\n\n";

  // The serving stack: ingest ring, model snapshot, CAT mirror, controller.
  serve::ArrivalIngest ingest(1 << 16);
  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));

  cachesim::HierarchyConfig hw_cfg;
  hw_cfg.l1d = {8 * 1024, 8, 64, 4};
  hw_cfg.l1i = {8 * 1024, 8, 64, 4};
  hw_cfg.l2 = {64 * 1024, 16, 64, 12};
  hw_cfg.llc = {512 * 1024, 8, 64, 40};
  cachesim::CacheHierarchy hw(hw_cfg, 2);
  cat::AllocationPlan plan = cat::make_pair_plan(8, 1, 2);
  cat::CatResilienceConfig resilience;
  resilience.max_boost_lease = 30.0;  // generous: clean runs never trip it
  cat::CatController cat(hw, plan, resilience);

  serve::ControllerConfig cfg;
  cfg.base_condition.primary = wl::Benchmark::kKmeans;
  cfg.base_condition.collocated = wl::Benchmark::kRedis;
  cfg.base_condition.util_primary = 0.6;
  cfg.base_condition.util_collocated = 0.6;
  cfg.base_condition.timeout_primary = 1.0;
  cfg.base_condition.timeout_collocated = 1.0;
  cfg.base_condition.seed = 99;
  cfg.explorer = opts.explorer;
  cfg.estimator.min_completions = 10;
  serve::OnlineController controller(ingest, models, cfg, &cat);

  // Traffic: both services breathe (sinusoidal load) so the controller has
  // something to chase; boosted queries really do finish faster.
  serve::ReplayConfig traffic;
  traffic.workloads = {
      {.mean_service = 0.05, .service_cv = 0.8, .servers = 2,
       .base_util = 0.60, .util_amplitude = 0.15, .util_period = 60.0},
      {.mean_service = 0.05, .service_cv = 0.8, .servers = 2,
       .base_util = 0.55, .util_amplitude = 0.10, .util_period = 45.0}};
  traffic.shards_per_workload = 2;
  serve::TrafficReplay replay(ingest, &controller, traffic);

  const bool soak = soak_wall_seconds > 0.0;
  const double sim_seconds = soak ? std::max(40.0, 8.0 * soak_wall_seconds)
                                  : 120.0;
  const double epoch_interval = 2.0;
  const double wall_pace = soak ? sim_seconds / soak_wall_seconds : 0.0;

  // Background recalibration: refit a fresh bundle mid-run and hot-swap it
  // while producers and the controller keep running.
  std::thread recalibrator([&] {
    auto next = serve::build_serving_model(mgr, opts, 2);
    models.publish(std::move(next));
    std::cout << "  [recalibrator] published model v2 (hot swap)\n";
  });

  std::cout << "serving " << sim_seconds << " simulated seconds, epoch "
            << epoch_interval << " s"
            << (soak ? " (wall-paced soak)" : " (full speed)") << "...\n";
  const serve::SoakResult result =
      replay.run_threaded(controller, sim_seconds, epoch_interval, wall_pace);
  recalibrator.join();

  const auto& totals = result.controller;
  std::cout << "\nrun summary\n"
            << "  epochs:              " << result.epochs << "\n"
            << "  events drained:      " << totals.events_drained << "\n"
            << "  arrivals/timeouts:   " << result.traffic.arrivals << " / "
            << result.traffic.timeouts << "\n"
            << "  replans:             " << totals.replans << "\n"
            << "  stale holds:         " << totals.stale_holds << "\n"
            << "  model swaps seen:    " << totals.model_swaps_observed << "\n"
            << "  ingest drops:        " << result.ingest_dropped << "\n"
            << "  watchdog revokes:    " << totals.watchdog_revocations << "\n"
            << "  COS switches:        " << cat.switch_count() << "\n"
            << "  applied timeouts:    (" << controller.timeout(0) << ", "
            << controller.timeout(1) << ")\n";
  {
    const auto guard = models.acquire();
    const auto cache = guard->pred().cache_stats();
    std::cout << "  rt_cache hit rate:   " << cache.hit_rate() << " ("
              << cache.hits << "/" << cache.hits + cache.misses << ")\n";
  }

  // Machine-parseable verdict (the CI soak step greps this line).
  const bool clean = result.ingest_dropped == 0 &&
                     result.traffic.push_failures == 0 &&
                     totals.watchdog_revocations == 0 && totals.replans > 0;
  std::cout << "\n"
            << (clean ? "soak ok" : "soak FAILED")
            << ": drops=" << result.ingest_dropped
            << " push_failures=" << result.traffic.push_failures
            << " watchdog_revocations=" << totals.watchdog_revocations
            << " replans=" << totals.replans << " epochs=" << result.epochs
            << "\n";
  return clean ? 0 : 1;
}

// Closed-loop online serving demo: live traffic in, STAP timeouts out.
//
//   1. Calibrate a StacManager offline (trimmed budgets, as quickstart).
//   2. Publish its model as the first ServingModel bundle.
//   3. Start the serving runtime: shard producer threads replay a
//      time-varying query stream into the lock-free ingest ring while the
//      OnlineController drains it, re-estimates conditions, and re-plans
//      the timeout vector every control epoch — steering the very traffic
//      the next epoch observes (boosted queries finish faster).
//   4. Mid-run, a background thread refits a new bundle and hot-swaps it
//      in; admission never stalls.
//
// Run:          ./build/examples/serve_demo
// Soak mode:    ./build/examples/serve_demo --soak 10
//   paces the simulated clock to run >= N wall seconds of closed loop and
//   exits nonzero unless the run was clean (zero ingest drops, zero
//   watchdog force-revokes) — the CI serve-soak gate greps its last line.
// Chaos mode:   ./build/examples/serve_demo --soak 20 --kill-after 8 --recover
//   arms an injected crash of the control thread at epoch 8, then
//   "restarts" the controller: a fresh OnlineController loads the last
//   checkpoint, serves the recovered last-known-good vector immediately
//   (before any model exists in the new process), and must re-plan within
//   3 epochs once the refit bundle publishes.  The proxies and the ingest
//   ring survive the crash, exactly like a controller-process restart on a
//   live host.  The CI chaos gate greps the `recovery ok:` line.
// Knobs:        --checkpoint-dir DIR   durable state location
//               --admission            shed load in front of the ring
//               --deadline SECONDS     planning budget per epoch
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <thread>

#include "cat/cat_controller.hpp"
#include "common/fault_injection.hpp"
#include "serve/checkpoint.hpp"
#include "serve/online_controller.hpp"
#include "serve/traffic_replay.hpp"

using namespace stac;

namespace {

core::StacOptions demo_options() {
  core::StacOptions opts;
  opts.profile_budget = 6;
  opts.profiler.target_completions = 300;
  opts.profiler.warmup_completions = 40;
  opts.profiler.max_windows = 1;
  opts.profiler.accesses_per_sample = 800;
  opts.model.deep_forest.mgs.window_sizes = {5};
  opts.model.deep_forest.mgs.estimators = 8;
  opts.model.deep_forest.cascade.levels = 1;
  opts.model.deep_forest.cascade.estimators = 12;
  opts.predictor.sim_queries = 2000;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  double soak_wall_seconds = 0.0;
  std::uint64_t kill_after = 0;
  bool recover = false;
  bool admission_on = false;
  double plan_deadline = 0.0;
  std::string checkpoint_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--soak") == 0 && i + 1 < argc) {
      soak_wall_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--kill-after") == 0 && i + 1 < argc) {
      kill_after = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[i], "--admission") == 0) {
      admission_on = true;
    } else if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc) {
      plan_deadline = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--soak WALL_SECONDS] [--kill-after EPOCH] [--recover]"
                   " [--checkpoint-dir DIR] [--admission]"
                   " [--deadline SECONDS]\n";
      return 2;
    }
  }
  if ((kill_after > 0 || recover) && checkpoint_dir.empty())
    checkpoint_dir = "serve_demo_ckpt";
  if (!checkpoint_dir.empty())
    std::filesystem::create_directories(checkpoint_dir);

  std::cout << "== stac serve_demo: closed-loop STAP control over a live "
               "stream ==\n\n";

  // Offline: calibrate once (the serving runtime never blocks on this).
  const core::StacOptions opts = demo_options();
  core::StacManager mgr(opts);
  std::cout << "calibrating k-means + Redis (trimmed budgets)...\n";
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);
  std::cout << "  " << mgr.library().size() << " profiles, primary model "
            << (mgr.primary_model_degraded() ? "DEGRADED" : "trained")
            << "\n\n";

  // The serving stack: ingest ring, model snapshot, CAT mirror, controller.
  serve::ArrivalIngest ingest(1 << 16);
  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));

  cachesim::HierarchyConfig hw_cfg;
  hw_cfg.l1d = {8 * 1024, 8, 64, 4};
  hw_cfg.l1i = {8 * 1024, 8, 64, 4};
  hw_cfg.l2 = {64 * 1024, 16, 64, 12};
  hw_cfg.llc = {512 * 1024, 8, 64, 40};
  cachesim::CacheHierarchy hw(hw_cfg, 2);
  cat::AllocationPlan plan = cat::make_pair_plan(8, 1, 2);
  cat::CatResilienceConfig resilience;
  resilience.max_boost_lease = 30.0;  // generous: clean runs never trip it
  cat::CatController cat(hw, plan, resilience);

  serve::AdmissionController admission(ingest, 2);

  serve::ControllerConfig cfg;
  cfg.base_condition.primary = wl::Benchmark::kKmeans;
  cfg.base_condition.collocated = wl::Benchmark::kRedis;
  cfg.base_condition.util_primary = 0.6;
  cfg.base_condition.util_collocated = 0.6;
  cfg.base_condition.timeout_primary = 1.0;
  cfg.base_condition.timeout_collocated = 1.0;
  cfg.base_condition.seed = 99;
  cfg.explorer = opts.explorer;
  cfg.estimator.min_completions = 10;
  cfg.plan_deadline_seconds = plan_deadline;
  if (!checkpoint_dir.empty()) {
    cfg.checkpoint.directory = checkpoint_dir;
    cfg.checkpoint.every_n_epochs = 2;
    cfg.checkpoint.library_ref = "stac_manager:kmeans+redis";
    cfg.checkpoint.library_size = mgr.library().size();
  }
  if (admission_on) cfg.admission = &admission;
  serve::OnlineController controller(ingest, models, cfg, &cat);

  // Traffic: both services breathe (sinusoidal load) so the controller has
  // something to chase; boosted queries really do finish faster.
  serve::ReplayConfig traffic;
  traffic.workloads = {
      {.mean_service = 0.05, .service_cv = 0.8, .servers = 2,
       .base_util = 0.60, .util_amplitude = 0.15, .util_period = 60.0},
      {.mean_service = 0.05, .service_cv = 0.8, .servers = 2,
       .base_util = 0.55, .util_amplitude = 0.10, .util_period = 45.0}};
  traffic.shards_per_workload = 2;
  if (admission_on) traffic.admission = &admission;
  serve::TrafficReplay replay(ingest, &controller, traffic);

  const bool soak = soak_wall_seconds > 0.0;
  const double sim_seconds = soak ? std::max(40.0, 8.0 * soak_wall_seconds)
                                  : 120.0;
  const double epoch_interval = 2.0;
  const double wall_pace = soak ? sim_seconds / soak_wall_seconds : 0.0;

  // Background recalibration: refit a fresh bundle mid-run and hot-swap it
  // while producers and the controller keep running.
  std::thread recalibrator([&] {
    auto next = serve::build_serving_model(mgr, opts, 2);
    models.publish(std::move(next));
    std::cout << "  [recalibrator] published model v2 (hot swap)\n";
  });

  // Chaos: arm an injected crash of the control thread at epoch
  // `kill_after` (fires once, counted per run_epoch hit).
  std::optional<FaultScope> chaos;
  if (kill_after > 0) {
    FaultPlan fplan;
    fplan.seed = 7;
    fplan.add({.point = "serve.controller.epoch",
               .action = FaultAction::kThrow,
               .every_nth = 1,
               .from_hit = kill_after,
               .until_hit = kill_after + 1,
               .message = "injected controller crash"});
    chaos.emplace(std::move(fplan));
  }

  std::cout << "serving " << sim_seconds << " simulated seconds, epoch "
            << epoch_interval << " s"
            << (soak ? " (wall-paced soak)" : " (full speed)") << "...\n";

  bool crashed = false;
  double crash_sim_time = 0.0;
  serve::SoakResult result;
  try {
    result = replay.run_threaded(controller, sim_seconds, epoch_interval,
                                 wall_pace);
  } catch (const InjectedFault& e) {
    crashed = true;
    crash_sim_time =
        static_cast<double>(kill_after) * epoch_interval;
    std::cout << "\n  [chaos] control thread died at epoch " << kill_after
              << " (sim t=" << crash_sim_time << "): " << e.what() << "\n";
  }
  recalibrator.join();
  chaos.reset();  // disarm: the restarted controller runs fault-free

  if (crashed && !recover) {
    std::cout << "crashed (no --recover): exiting dirty\n";
    return 1;
  }

  if (crashed) {
    // ---- Restart: a brand-new controller attaches to the surviving ring.
    const serve::CheckpointLoadReport loaded =
        serve::load_checkpoint(serve::checkpoint_path(checkpoint_dir));
    const std::uint64_t corrupt_checkpoints = loaded.quarantined ? 1 : 0;
    if (!loaded.clean()) {
      std::cout << "recovery FAILED: checkpoint unusable (" << loaded.reason
                << ")\n";
      return 1;
    }
    std::cout << "  [recovery] checkpoint @ epoch " << loaded.checkpoint->epoch
              << " (sim t=" << loaded.checkpoint->time << ", library "
              << loaded.checkpoint->library_ref << ")\n";

    // The new process has no model yet: serving starts from the recovered
    // last-known-good vector while the refit happens behind it.
    serve::ModelSnapshot<serve::ServingModel> models2;
    serve::OnlineController controller2(ingest, models2, cfg, &cat);
    const serve::RecoveryReport rec =
        controller2.recover(*loaded.checkpoint, crash_sim_time);
    if (!rec.restored) {
      std::cout << "  [recovery] checkpoint quarantined: " << rec.reason
                << "\n";
    }
    replay.rebind_controller(&controller2);
    std::cout << "  [recovery] serving recovered vector ("
              << controller2.timeout(0) << ", " << controller2.timeout(1)
              << ") while the model refits\n";

    // Refit now (restart-time model load), publish after roughly one epoch
    // so the bounded-staleness window is actually exercised.
    auto bundle = serve::build_serving_model(mgr, opts, 3);
    std::thread publisher([&models2, &bundle, wall_pace, epoch_interval] {
      const double delay_s =
          wall_pace > 0.0 ? epoch_interval / wall_pace : 0.05;
      std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
      models2.publish(std::move(bundle));
    });

    const double remaining = sim_seconds - crash_sim_time;
    const serve::SoakResult after = replay.run_threaded(
        controller2, remaining, epoch_interval, wall_pace, crash_sim_time);
    publisher.join();

    const auto& totals2 = controller2.totals();
    std::cout << "\nrecovery summary\n"
              << "  epochs after restart:  " << after.epochs << "\n"
              << "  held (no model):       " << totals2.model_unavailable_holds
              << "\n"
              << "  first replan at epoch: " << after.epochs_to_first_replan
              << " (post-restart)\n"
              << "  checkpoints written:   " << totals2.checkpoints_written
              << "\n"
              << "  recoveries:            " << totals2.recoveries << "\n"
              << "  applied timeouts:      (" << controller2.timeout(0) << ", "
              << controller2.timeout(1) << ")\n";

    // Machine-parseable verdict (the CI chaos step greps this line):
    // recovered_in counts post-restart epochs until the first replan.
    const std::uint64_t recovered_in = after.epochs_to_first_replan;
    const bool ok = recovered_in >= 1 && recovered_in <= 3 &&
                    corrupt_checkpoints == 0 && totals2.recoveries == 1 &&
                    after.traffic.push_failures == 0 &&
                    after.watchdog_revocations == 0;
    std::cout << "\n"
              << (ok ? "recovery ok" : "recovery FAILED")
              << ": recovered_in=" << recovered_in
              << " corrupt_checkpoints=" << corrupt_checkpoints
              << " push_failures=" << after.traffic.push_failures
              << " watchdog_revocations=" << after.watchdog_revocations
              << " replans_after=" << totals2.replans
              << " epochs_after=" << after.epochs << "\n";
    return ok ? 0 : 1;
  }

  const auto& totals = result.controller;
  std::cout << "\nrun summary\n"
            << "  epochs:              " << result.epochs << "\n"
            << "  events drained:      " << totals.events_drained << "\n"
            << "  arrivals/timeouts:   " << result.traffic.arrivals << " / "
            << result.traffic.timeouts << "\n"
            << "  replans:             " << totals.replans << "\n"
            << "  stale holds:         " << totals.stale_holds << "\n"
            << "  deadline misses:     " << totals.deadline_misses << "\n"
            << "  checkpoints:         " << totals.checkpoints_written << "\n"
            << "  model swaps seen:    " << totals.model_swaps_observed << "\n"
            << "  ingest drops:        " << result.ingest_dropped << "\n"
            << "  shed (admission):    " << result.traffic.shed << "\n"
            << "  watchdog revokes:    " << totals.watchdog_revocations << "\n"
            << "  COS switches:        " << cat.switch_count() << "\n"
            << "  applied timeouts:    (" << controller.timeout(0) << ", "
            << controller.timeout(1) << ")\n";
  {
    const auto guard = models.acquire();
    const auto cache = guard->pred().cache_stats();
    std::cout << "  rt_cache hit rate:   " << cache.hit_rate() << " ("
              << cache.hits << "/" << cache.hits + cache.misses << ")\n";
  }

  // Machine-parseable verdict (the CI soak step greps this line).
  const bool clean = result.ingest_dropped == 0 &&
                     result.traffic.push_failures == 0 &&
                     totals.watchdog_revocations == 0 && totals.replans > 0;
  std::cout << "\n"
            << (clean ? "soak ok" : "soak FAILED")
            << ": drops=" << result.ingest_dropped
            << " push_failures=" << result.traffic.push_failures
            << " watchdog_revocations=" << totals.watchdog_revocations
            << " replans=" << totals.replans << " epochs=" << result.epochs
            << "\n";
  return clean ? 0 : 1;
}

// Quickstart: the whole pipeline in five calls.
//
//   1. Construct a StacManager.
//   2. calibrate(a, b)  — Stage-1 profiling + Stage-2 deep-forest training
//                         for one collocated pairing.
//   3. predict(cond)    — Stage-3 response-time prediction for any runtime
//                         condition, no testbed run needed.
//   4. recommend(cond)  — §5.2 model-driven timeout-vector selection.
//   5. evaluate(...)    — ground-truth check on the simulated testbed.
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <iostream>

#include "core/stac_manager.hpp"

using namespace stac;
using core::StacManager;
using core::StacOptions;
using profiler::RuntimeCondition;

int main() {
  std::cout << "== stac quickstart: k-means collocated with Redis ==\n\n";

  // Trimmed budgets so this finishes in ~20 s; defaults are larger.
  StacOptions opts;
  opts.profile_budget = 16;
  opts.profiler.target_completions = 700;
  opts.model.deep_forest.mgs.window_sizes = {5, 10};
  opts.model.deep_forest.mgs.estimators = 15;
  opts.model.deep_forest.cascade.levels = 2;
  opts.model.deep_forest.cascade.estimators = 30;

  StacManager mgr(opts);
  std::cout << "calibrating (profiling both collocation directions, "
               "training the deep forest)...\n";
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);
  std::cout << "  " << mgr.library().size() << " profiles collected\n\n";

  // Predict response time for a condition that was never profiled.
  RuntimeCondition cond;
  cond.primary = wl::Benchmark::kKmeans;
  cond.collocated = wl::Benchmark::kRedis;
  cond.util_primary = 0.85;
  cond.util_collocated = 0.85;
  cond.timeout_primary = 1.0;   // boost after 100% of expected service time
  cond.timeout_collocated = 1.0;
  cond.seed = 99;

  const auto pred = mgr.predict(cond);
  std::cout << "prediction for util 0.85/0.85, timeouts 1.0/1.0:\n"
            << "  normalized mean RT " << pred.norm_mean_rt
            << ", p95 " << pred.norm_p95_rt
            << ", effective allocation " << pred.ea << "\n\n";

  // Let the model pick the timeout vector (25-setting exploration).
  const auto rec = mgr.recommend(cond);
  std::cout << "model-driven recommendation: T = ("
            << rec.selection.timeout_primary << ", "
            << rec.selection.timeout_collocated << ") after "
            << rec.predictions_made << " predictions\n\n";

  // Ground truth: recommended policy vs no sharing at all.
  const auto baseline = mgr.evaluate(cond, 6.0, 6.0, 1500);
  const auto chosen = mgr.evaluate(cond, rec.selection.timeout_primary,
                                   rec.selection.timeout_collocated, 1500);
  std::cout << "testbed check (p95 response time):\n"
            << "  no sharing:     kmeans " << baseline.p95_rt(0)
            << "  redis " << baseline.p95_rt(1) << "\n"
            << "  recommended:    kmeans " << chosen.p95_rt(0)
            << "  redis " << chosen.p95_rt(1) << "\n"
            << "  speedups:       kmeans "
            << baseline.p95_rt(0) / chosen.p95_rt(0) << "x, redis "
            << baseline.p95_rt(1) / chosen.p95_rt(1) << "x\n";
  return 0;
}

// Fleet-scale sharded serving demo: N node shards under one coordinator.
//
//   1. Calibrate a StacManager offline (trimmed budgets, as serve_demo).
//   2. Publish its model once; every shard serves from the same snapshot.
//   3. Each shard owns its ingest ring, condition estimator, and CAT
//      domain.  Per epoch, N producer threads push traffic into their
//      shard's ring; the FleetCoordinator drains every shard, merges the
//      per-workload moments (count-weighted), runs ONE global memoized
//      sweep, and pushes the plan to every shard through the FleetPlan
//      RCU snapshot.
//   4. Mid-run, one shard leaves (final drain -> checkpoint -> CAT boosts
//      released) and later rejoins from its checkpoint, adopting the
//      currently published plan — the zero-loss join/leave drill.
//   5. A second node's profile library merges into the fleet's (all
//      duplicates here: one calibration, shared fleet-wide).
//
// Run:        ./build/examples/fleet_demo
// Soak mode:  ./build/examples/fleet_demo --shards 16 --soak 10
//   keeps the closed loop running >= N wall seconds and exits nonzero
//   unless the run was clean (zero ring drops, zero push failures, zero
//   join quarantines, zero watchdog revokes) — the CI fleet-soak gate
//   greps the `fleet ok:` line.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "cat/cat_controller.hpp"
#include "fleet/fleet_coordinator.hpp"
#include "serve/online_controller.hpp"

using namespace stac;

namespace {

core::StacOptions demo_options() {
  core::StacOptions opts;
  opts.profile_budget = 6;
  opts.profiler.target_completions = 300;
  opts.profiler.warmup_completions = 40;
  opts.profiler.max_windows = 1;
  opts.profiler.accesses_per_sample = 800;
  opts.model.deep_forest.mgs.window_sizes = {5};
  opts.model.deep_forest.mgs.estimators = 8;
  opts.model.deep_forest.cascade.levels = 1;
  opts.model.deep_forest.cascade.estimators = 12;
  opts.predictor.sim_queries = 2000;
  return opts;
}

/// One epoch of deterministic traffic into a shard's ring: `pairs`
/// arrival+completion pairs per workload spread across [t0, t1), with a
/// sprinkle of timeouts and boosted completions so the CAT mirror has
/// something to do.  Returns push failures (must stay zero: the epoch
/// batch is sized under the ring's capacity).
std::uint64_t feed_shard(fleet::NodeShard& shard, double t0, double t1,
                         std::size_t pairs) {
  std::uint64_t failures = 0;
  const double step = (t1 - t0) / static_cast<double>(pairs);
  for (std::uint16_t w = 0; w < 2; ++w) {
    for (std::size_t i = 0; i < pairs; ++i) {
      const double t = t0 + static_cast<double>(i) * step;
      serve::QueryEvent arrival;
      arrival.kind = serve::EventKind::kArrival;
      arrival.workload = w;
      arrival.time = t;
      if (!shard.ingest().try_push(arrival)) ++failures;
      serve::QueryEvent done;
      done.kind = i % 64 == 63 ? serve::EventKind::kTimeout
                               : serve::EventKind::kCompletion;
      done.workload = w;
      done.time = t;
      done.service = 0.05;
      done.queue_delay = 0.005;
      done.boosted = i % 64 == 0;
      if (!shard.ingest().try_push(done)) ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t shards = 4;
  double soak_wall_seconds = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--soak") == 0 && i + 1 < argc) {
      soak_wall_seconds = std::atof(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--shards N] [--soak WALL_SECONDS]\n";
      return 2;
    }
  }
  if (shards < 2) shards = 2;  // the drill needs a shard to spare

  std::cout << "== stac fleet_demo: " << shards
            << "-shard coordinated STAP control ==\n\n";

  const core::StacOptions opts = demo_options();
  core::StacManager mgr(opts);
  std::cout << "calibrating k-means + Redis (trimmed budgets)...\n";
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);
  std::cout << "  " << mgr.library().size() << " profiles\n\n";

  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));

  // One CAT domain per node: the boost intersection is solved globally,
  // the cache partitions stay node-local (each shard mirrors the fleet
  // plan onto its own hardware).
  cachesim::HierarchyConfig hw_cfg;
  hw_cfg.l1d = {8 * 1024, 8, 64, 4};
  hw_cfg.l1i = {8 * 1024, 8, 64, 4};
  hw_cfg.l2 = {64 * 1024, 16, 64, 12};
  hw_cfg.llc = {512 * 1024, 8, 64, 40};
  std::vector<std::unique_ptr<cachesim::CacheHierarchy>> node_hw;
  std::vector<std::unique_ptr<cat::CatController>> node_cat;
  fleet::FleetConfig cfg;
  for (std::size_t s = 0; s < shards; ++s) {
    node_hw.push_back(std::make_unique<cachesim::CacheHierarchy>(hw_cfg, 2));
    cat::AllocationPlan plan = cat::make_pair_plan(8, 1, 2);
    cat::CatResilienceConfig resilience;
    resilience.max_boost_lease = 30.0;
    node_cat.push_back(std::make_unique<cat::CatController>(
        *node_hw.back(), plan, resilience));
    cfg.cats.push_back(node_cat.back().get());
  }

  cfg.shards = shards;
  cfg.shard.servers = 2;
  cfg.shard.estimator.min_completions = 10;
  cfg.planner.base_condition.primary = wl::Benchmark::kKmeans;
  cfg.planner.base_condition.collocated = wl::Benchmark::kRedis;
  cfg.planner.base_condition.util_primary = 0.6;
  cfg.planner.base_condition.util_collocated = 0.6;
  cfg.planner.base_condition.timeout_primary = 1.0;
  cfg.planner.base_condition.timeout_collocated = 1.0;
  cfg.planner.base_condition.seed = 99;
  cfg.planner.explorer = opts.explorer;
  fleet::FleetCoordinator fleet(models, cfg);

  const bool soak = soak_wall_seconds > 0.0;
  const std::size_t pairs_per_epoch = 8192;  // x2 workloads, under ring cap
  const double interval = 2.0;
  const std::size_t min_epochs = soak ? 8 : 12;

  std::cout << "serving (" << shards << " shards, "
            << 4 * pairs_per_epoch << " events/shard/epoch"
            << (soak ? ", wall-clocked soak" : "") << ")...\n";

  std::uint64_t push_failures = 0;
  std::uint64_t replans = 0;
  bool drill_done = false;
  bool drill_clean = false;
  std::size_t epoch = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  const auto wall_seconds = [&wall_start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };

  serve::ControllerCheckpoint handoff;
  std::size_t drill_shard = shards - 1;
  for (;;) {
    const double t0 = static_cast<double>(epoch) * interval;
    const double t1 = t0 + interval;

    // N producers, one per active shard, then one coordinator epoch.
    std::vector<std::thread> producers;
    std::vector<std::uint64_t> failed(shards, 0);
    for (std::size_t s = 0; s < shards; ++s) {
      if (!fleet.shard(s).active()) continue;
      producers.emplace_back([&fleet, &failed, s, t0, t1, pairs_per_epoch] {
        failed[s] = feed_shard(fleet.shard(s), t0, t1, pairs_per_epoch);
      });
    }
    for (auto& p : producers) p.join();
    for (const std::uint64_t f : failed) push_failures += f;

    const fleet::FleetEpochReport r = fleet.run_epoch(t1);
    if (r.replanned) ++replans;

    // Halfway through (and once a plan exists): the join/leave drill.  The
    // leaving shard's final drain folds in everything its producers pushed;
    // the rejoin restores from the hand-off checkpoint and adopts the
    // current plan.
    if (!drill_done && fleet.shard(drill_shard).active() &&
        epoch >= min_epochs / 2 && replans > 0) {
      handoff = fleet.leave_shard(drill_shard, t1);
      std::cout << "  [drill] shard " << drill_shard << " left at epoch "
                << epoch << " (checkpoint epoch " << handoff.epoch
                << ", boosts released)\n";
    } else if (!drill_done && !fleet.shard(drill_shard).active()) {
      const serve::RecoveryReport rec =
          fleet.rejoin_shard(drill_shard, handoff, t1);
      drill_clean = rec.restored && !rec.quarantined;
      drill_done = true;
      std::cout << "  [drill] shard " << drill_shard << " rejoined at epoch "
                << epoch << " (restored=" << (rec.restored ? "yes" : "no")
                << ", plan epoch " << r.epoch << " adopted)\n";
    }

    ++epoch;
    // The drill must complete before a clean exit; the hard cap keeps a
    // never-replanning run from looping forever (it exits dirty instead).
    if (epoch >= min_epochs && (drill_done || epoch >= min_epochs * 4) &&
        (!soak || wall_seconds() >= soak_wall_seconds))
      break;
  }
  const double elapsed = wall_seconds();

  // Cross-node library merge: a "second node" offers its calibration — one
  // fleet, one library, duplicates deduplicated.
  const auto merge1 = fleet.merge_library(mgr.library());
  const auto merge2 = fleet.merge_library(mgr.library());
  std::cout << "  [library] node A merged " << merge1.added << " profiles; "
            << "node B offered " << merge2.duplicates << " duplicates, added "
            << merge2.added << "\n";

  // Accounting: every event pushed into any ring was drained into an
  // estimator (the leave drill's final drain included).
  std::uint64_t pushed = 0, popped = 0, dropped = 0;
  std::uint64_t watchdog_revocations = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    pushed += fleet.shard(s).ingest().pushed();
    popped += fleet.shard(s).ingest().popped();
    dropped += fleet.shard(s).ingest().dropped();
    watchdog_revocations += fleet.shard(s).totals().watchdog_revocations;
  }
  const auto& totals = fleet.totals();
  const double events_per_min =
      static_cast<double>(totals.events_drained) / std::max(1e-9, elapsed) *
      60.0;

  std::cout << "\nrun summary\n"
            << "  shards:              " << shards << " (" << fleet.active_shards()
            << " active)\n"
            << "  epochs:              " << totals.epochs << "\n"
            << "  events drained:      " << totals.events_drained << "\n"
            << "  aggregate rate:      " << events_per_min / 1e6
            << "M events/min (wall " << elapsed << " s)\n"
            << "  replans / pushes:    " << totals.replans << " / "
            << totals.plan_pushes << "\n"
            << "  leaves / joins:      " << totals.leaves << " / "
            << totals.joins << "\n"
            << "  join quarantines:    " << totals.join_quarantines << "\n"
            << "  library profiles:    " << fleet.library().size() << "\n"
            << "  ring drops:          " << dropped << "\n"
            << "  watchdog revokes:    " << watchdog_revocations << "\n"
            << "  fleet timeouts:      (" << fleet.shard(0).timeout(0) << ", "
            << fleet.shard(0).timeout(1) << ")\n";

  // Machine-parseable verdict (the CI fleet-soak step greps this line).
  const bool clean = dropped == 0 && push_failures == 0 && popped == pushed &&
                     drill_done && drill_clean && totals.join_quarantines == 0 &&
                     watchdog_revocations == 0 && totals.replans > 0 &&
                     totals.leaves == 1 && totals.joins == 1;
  std::cout << "\n"
            << (clean ? "fleet ok" : "fleet FAILED") << ": shards=" << shards
            << " drops=" << dropped << " push_failures=" << push_failures
            << " join_quarantines=" << totals.join_quarantines
            << " watchdog_revocations=" << watchdog_revocations
            << " leaves=" << totals.leaves << " joins=" << totals.joins
            << " replans=" << totals.replans
            << " events=" << totals.events_drained
            << " events_per_min=" << static_cast<std::uint64_t>(events_per_min)
            << "\n";
  return clean ? 0 : 1;
}

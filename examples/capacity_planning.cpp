// Scenario: capacity planning with offline what-if exploration.
//
// The paper's selling point over reactive managers (PARTIES-style feedback)
// is that a calibrated model "can quickly explore collocation settings and
// policies online and offline" — no production traffic needed.  Here an
// operator asks: as the arrival rate of a Spark streaming job grows, when
// does short-term allocation stop holding the SLO, and how should the
// timeout move with load?
#include <iomanip>
#include <iostream>

#include "core/stac_manager.hpp"

using namespace stac;
using core::StacManager;
using core::StacOptions;
using profiler::RuntimeCondition;

int main() {
  std::cout << "== capacity planning: Spark k-means + Spark streaming ==\n\n";

  StacOptions opts;
  opts.profile_budget = 20;
  opts.profiler.target_completions = 700;
  opts.model.deep_forest.mgs.window_sizes = {5, 10};
  opts.model.deep_forest.mgs.estimators = 15;
  opts.model.deep_forest.cascade.levels = 2;
  opts.model.deep_forest.cascade.estimators = 30;
  StacManager mgr(opts);
  std::cout << "calibrating spkmeans+spstream once (offline, ~30 s)...\n\n";
  mgr.calibrate(wl::Benchmark::kSpkmeans, wl::Benchmark::kSpstream);

  // Sweep the streaming job's offered load; re-plan the timeout vector at
  // each level purely from the model.  SLO: p95 under 3x base service time.
  constexpr double kSloNormP95 = 3.0;
  std::cout << "load sweep for spstream (SLO: normalized p95 < "
            << kSloNormP95 << "):\n";
  std::cout << "  util   best T (stream, kmeans)   predicted p95   SLO\n";
  for (double util : {0.5, 0.65, 0.8, 0.9}) {
    RuntimeCondition cond;
    cond.primary = wl::Benchmark::kSpstream;
    cond.collocated = wl::Benchmark::kSpkmeans;
    cond.util_primary = util;
    cond.util_collocated = 0.7;  // the batch job's load is steady
    cond.seed = 23;
    const auto rec = mgr.recommend(cond);
    RuntimeCondition chosen = cond;
    chosen.timeout_primary = rec.selection.timeout_primary;
    chosen.timeout_collocated = rec.selection.timeout_collocated;
    const auto pred = mgr.predict(chosen);
    std::cout << "  " << std::fixed << std::setprecision(2) << util
              << "    (" << std::setprecision(1)
              << rec.selection.timeout_primary << ", "
              << rec.selection.timeout_collocated << ")"
              << "                  " << std::setprecision(2)
              << pred.norm_p95_rt << "          "
              << (pred.norm_p95_rt < kSloNormP95 ? "ok" : "VIOLATED")
              << "\n";
  }

  // Spot-check the riskiest point against the ground truth.
  RuntimeCondition risky;
  risky.primary = wl::Benchmark::kSpstream;
  risky.collocated = wl::Benchmark::kSpkmeans;
  risky.util_primary = 0.9;
  risky.util_collocated = 0.7;
  risky.seed = 23;
  const auto rec = mgr.recommend(risky);
  const auto truth = mgr.evaluate(risky, rec.selection.timeout_primary,
                                  rec.selection.timeout_collocated, 2000);
  const auto scales = mgr.profiler().pair_scales(risky.primary,
                                                 risky.collocated);
  std::cout << "\nground-truth check at util 0.9: measured normalized p95 = "
            << std::setprecision(2)
            << truth.p95_rt(0) / scales.scaled_base_primary
            << " (one testbed run; the sweep above needed none)\n";
  return 0;
}

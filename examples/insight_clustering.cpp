// Scenario: the §5.2 insight experiment.  "We used the concepts learned by
// our deep-learning models to cluster workloads with similar cache
// behaviors and identified a complex interaction between arrival rate,
// service time and timeout that affects response time ... Clustering using
// only the hardware cache counters did not reveal the interaction."
//
// We cluster profiled conditions two ways — by the deep forest's learned
// concept vectors and by raw counter summaries — and compare how well the
// clusters separate effective allocation and the timeout/arrival regimes.
#include <iomanip>
#include <iostream>

#include "core/stac_manager.hpp"
#include "ml/kmeans.hpp"

using namespace stac;
using core::StacManager;
using core::StacOptions;

namespace {

/// Spread of a quantity within clusters (lower = cleaner separation):
/// mean per-cluster standard deviation, weighted by cluster size.
double within_cluster_spread(const std::vector<double>& value,
                             const std::vector<std::size_t>& assignment,
                             std::size_t k) {
  double weighted = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    StreamingStats st;
    for (std::size_t i = 0; i < value.size(); ++i)
      if (assignment[i] == c) st.add(value[i]);
    weighted += st.stddev() * static_cast<double>(st.count());
  }
  return weighted / static_cast<double>(value.size());
}

}  // namespace

int main() {
  std::cout << "== insight: concept clustering vs raw-counter clustering ==\n\n";

  StacOptions opts;
  opts.profile_budget = 24;
  opts.profiler.target_completions = 700;
  opts.model.deep_forest.mgs.window_sizes = {5, 10};
  opts.model.deep_forest.mgs.estimators = 15;
  opts.model.deep_forest.cascade.levels = 2;
  opts.model.deep_forest.cascade.estimators = 30;
  StacManager mgr(opts);
  std::cout << "calibrating kmeans+redis...\n";
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);

  const auto& profiles = mgr.library().profiles();
  std::cout << "clustering " << profiles.size() << " profiles\n\n";

  // Feature matrices: learned concepts vs raw counter row-means.
  Matrix concept_points(0, 0);
  Matrix counter_points(0, 0);
  std::vector<double> ea, timeout, util;
  for (const auto& p : profiles) {
    const auto concepts = mgr.model().concepts(mgr.model().make_sample(p));
    concept_points.append_row(concepts);
    std::vector<double> counters;
    for (std::size_t r = 0; r < p.image.rows(); ++r) {
      double mean = 0.0;
      for (double v : p.image.row(r)) mean += v;
      counters.push_back(mean / static_cast<double>(p.image.cols()));
    }
    counter_points.append_row(counters);
    ea.push_back(p.ea_boost);
    timeout.push_back(p.condition.timeout_primary);
    util.push_back(p.condition.util_primary);
  }

  constexpr std::size_t kClusters = 4;
  ml::KMeansConfig kc;
  kc.k = kClusters;
  kc.seed = 5;
  const auto by_concepts = ml::kmeans(concept_points, kc);
  const auto by_counters = ml::kmeans(counter_points, kc);

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "within-cluster spread (lower = the clustering 'sees' the "
               "factor):\n";
  std::cout << "  factor                concepts   raw counters\n";
  const struct {
    const char* name;
    const std::vector<double>* value;
  } factors[] = {{"effective allocation", &ea},
                 {"timeout setting     ", &timeout},
                 {"arrival rate (util) ", &util}};
  for (const auto& f : factors) {
    std::cout << "  " << f.name << "  "
              << within_cluster_spread(*f.value, by_concepts.assignment,
                                       kClusters)
              << "      "
              << within_cluster_spread(*f.value, by_counters.assignment,
                                       kClusters)
              << "\n";
  }

  // Show the concept clusters' centroids in condition space.
  std::cout << "\nconcept clusters in condition space "
               "(mean util / timeout / EA):\n";
  for (std::size_t c = 0; c < kClusters; ++c) {
    StreamingStats u, t, e;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      if (by_concepts.assignment[i] != c) continue;
      u.add(util[i]);
      t.add(timeout[i]);
      e.add(ea[i]);
    }
    if (u.count() == 0) continue;
    std::cout << "  cluster " << c << " (" << u.count() << " profiles): util "
              << u.mean() << ", timeout " << t.mean() << ", EA " << e.mean()
              << "\n";
  }
  std::cout << "\nConcept clusters align with the arrival-rate x timeout\n"
               "interaction (they group conditions with similar EA even when\n"
               "their raw counters differ) — the paper's closing insight.\n";
  return 0;
}

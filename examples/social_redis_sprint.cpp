// Scenario: a latency-critical micro-service site (Social, 36 services in
// 30 containers) shares LLC ways with a cache-hungry session store (Redis)
// — the collocation the paper highlights in §5.2, where dCat starves Social
// and dynaSprint mis-times Redis.  This example:
//
//   1. characterizes both workloads on the simulated CAT hardware,
//   2. calibrates the model for the pairing,
//   3. prints the predicted response-time surface over the timeout grid
//      (what the operator would inspect before committing a policy), and
//   4. verifies the asymmetric recommendation against one-sided (dCat-like)
//      and share-everything (static) alternatives on the testbed.
#include <iomanip>
#include <iostream>

#include "core/stac_manager.hpp"
#include "wl/measure.hpp"

using namespace stac;
using core::StacManager;
using core::StacOptions;
using profiler::RuntimeCondition;

int main() {
  std::cout << "== social-network + Redis: short-term allocation sprint ==\n\n";

  // 1. Workload characterization on a scaled hardware replica.
  cachesim::HierarchyConfig hw = cachesim::presets::xeon_e5_2683();
  hw.llc.size_bytes /= 16;
  hw.l2.size_bytes /= 16;
  hw.l1d.size_bytes /= 16;
  hw.l1i.size_bytes /= 16;
  for (wl::Benchmark b : {wl::Benchmark::kSocial, wl::Benchmark::kRedis}) {
    wl::WorkloadSpec spec = wl::benchmark_spec(b);
    for (auto& c : spec.profile.components) c.ws_bytes /= 16.0;
    spec.zipf_records /= 16;
    const wl::WorkloadModel model(
        spec, hw.llc.ways, static_cast<double>(hw.llc_way_bytes()), 1);
    const auto c = wl::characterize(model, hw, 1, 30000, 80000, 7);
    std::cout << std::left << std::setw(8) << c.id << " LLC miss @baseline "
              << static_cast<int>(c.llc_miss_ratio * 100) << "%, data reuse "
              << static_cast<int>(c.data_reuse * 100) << "%  ("
              << c.cache_pattern << ")\n";
  }

  // 2. Calibrate the pairing.
  StacOptions opts;
  opts.profile_budget = 20;
  opts.profiler.target_completions = 700;
  opts.model.deep_forest.mgs.window_sizes = {5, 10};
  opts.model.deep_forest.mgs.estimators = 15;
  opts.model.deep_forest.cascade.levels = 2;
  opts.model.deep_forest.cascade.estimators = 30;
  StacManager mgr(opts);
  std::cout << "\ncalibrating social+redis...\n";
  mgr.calibrate(wl::Benchmark::kSocial, wl::Benchmark::kRedis);

  // 3. Predicted p95 surface at the paper's heavy arrival rate (90%).
  RuntimeCondition cond;
  cond.primary = wl::Benchmark::kSocial;
  cond.collocated = wl::Benchmark::kRedis;
  cond.util_primary = 0.9;
  cond.util_collocated = 0.9;
  cond.seed = 17;

  const std::vector<double> grid{0.0, 0.5, 1.0, 2.0, 4.0};
  std::cout << "\npredicted combined normalized p95 over the timeout grid\n"
               "(rows: social timeout, cols: redis timeout):\n        ";
  for (double tc : grid) std::cout << " T_r=" << tc << " ";
  std::cout << "\n";
  for (double tp : grid) {
    std::cout << "T_s=" << std::fixed << std::setprecision(1) << tp << " ";
    for (double tc : grid) {
      RuntimeCondition q = cond;
      q.timeout_primary = tp;
      q.timeout_collocated = tc;
      const double combined = 0.5 * (mgr.predict(q).norm_p95_rt +
                                     mgr.predict(q.swapped()).norm_p95_rt);
      std::cout << "  " << std::setprecision(3) << combined << " ";
    }
    std::cout << "\n";
  }

  // 4. Recommendation vs one-sided and share-everything policies.
  const auto rec = mgr.recommend(cond);
  std::cout << "\nrecommended timeout vector: (social "
            << rec.selection.timeout_primary << ", redis "
            << rec.selection.timeout_collocated << ")\n\n";

  struct Alternative {
    const char* name;
    double tp, tc;
  };
  const Alternative alts[] = {
      {"no sharing            ", 6.0, 6.0},
      {"share everything      ", 0.0, 0.0},
      {"all ways to social    ", 0.0, 6.0},
      {"all ways to redis     ", 6.0, 0.0},
      {"model-driven (ours)   ", rec.selection.timeout_primary,
       rec.selection.timeout_collocated},
  };
  const auto base = mgr.evaluate(cond, 6.0, 6.0, 2000);
  std::cout << "testbed p95 speedups vs no sharing (social / redis):\n";
  for (const auto& alt : alts) {
    const auto r = mgr.evaluate(cond, alt.tp, alt.tc, 2000);
    std::cout << "  " << alt.name << " "
              << std::setprecision(2) << base.p95_rt(0) / r.p95_rt(0)
              << "x / " << base.p95_rt(1) / r.p95_rt(1) << "x\n";
  }
  std::cout << "\nThe balanced timeout vector speeds up BOTH services — the\n"
               "one-sided policies sacrifice the other tenant (the paper's\n"
               "§5.2 social/redis finding).\n";
  return 0;
}

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stac_common_test[1]_include.cmake")
include("/root/repo/build/tests/stac_cachesim_test[1]_include.cmake")
include("/root/repo/build/tests/stac_cat_test[1]_include.cmake")
include("/root/repo/build/tests/stac_wl_test[1]_include.cmake")
include("/root/repo/build/tests/stac_queueing_test[1]_include.cmake")
include("/root/repo/build/tests/stac_ml_test[1]_include.cmake")
include("/root/repo/build/tests/stac_profiler_test[1]_include.cmake")
include("/root/repo/build/tests/stac_core_test[1]_include.cmake")
include("/root/repo/build/tests/stac_integration_test[1]_include.cmake")

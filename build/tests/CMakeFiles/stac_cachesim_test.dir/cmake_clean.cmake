file(REMOVE_RECURSE
  "CMakeFiles/stac_cachesim_test.dir/cachesim/cache_hierarchy_test.cpp.o"
  "CMakeFiles/stac_cachesim_test.dir/cachesim/cache_hierarchy_test.cpp.o.d"
  "CMakeFiles/stac_cachesim_test.dir/cachesim/cache_level_test.cpp.o"
  "CMakeFiles/stac_cachesim_test.dir/cachesim/cache_level_test.cpp.o.d"
  "CMakeFiles/stac_cachesim_test.dir/cachesim/perf_counters_test.cpp.o"
  "CMakeFiles/stac_cachesim_test.dir/cachesim/perf_counters_test.cpp.o.d"
  "stac_cachesim_test"
  "stac_cachesim_test.pdb"
  "stac_cachesim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_cachesim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

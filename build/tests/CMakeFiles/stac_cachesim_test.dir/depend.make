# Empty dependencies file for stac_cachesim_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for stac_common_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stac_common_test.dir/common/matrix_test.cpp.o"
  "CMakeFiles/stac_common_test.dir/common/matrix_test.cpp.o.d"
  "CMakeFiles/stac_common_test.dir/common/rng_test.cpp.o"
  "CMakeFiles/stac_common_test.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/stac_common_test.dir/common/stats_test.cpp.o"
  "CMakeFiles/stac_common_test.dir/common/stats_test.cpp.o.d"
  "CMakeFiles/stac_common_test.dir/common/table_test.cpp.o"
  "CMakeFiles/stac_common_test.dir/common/table_test.cpp.o.d"
  "CMakeFiles/stac_common_test.dir/common/thread_pool_test.cpp.o"
  "CMakeFiles/stac_common_test.dir/common/thread_pool_test.cpp.o.d"
  "stac_common_test"
  "stac_common_test.pdb"
  "stac_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

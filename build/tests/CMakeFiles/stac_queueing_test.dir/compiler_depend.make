# Empty compiler generated dependencies file for stac_queueing_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stac_queueing_test.dir/queueing/arrival_test.cpp.o"
  "CMakeFiles/stac_queueing_test.dir/queueing/arrival_test.cpp.o.d"
  "CMakeFiles/stac_queueing_test.dir/queueing/ggk_test.cpp.o"
  "CMakeFiles/stac_queueing_test.dir/queueing/ggk_test.cpp.o.d"
  "CMakeFiles/stac_queueing_test.dir/queueing/shared_region_test.cpp.o"
  "CMakeFiles/stac_queueing_test.dir/queueing/shared_region_test.cpp.o.d"
  "CMakeFiles/stac_queueing_test.dir/queueing/testbed_test.cpp.o"
  "CMakeFiles/stac_queueing_test.dir/queueing/testbed_test.cpp.o.d"
  "stac_queueing_test"
  "stac_queueing_test.pdb"
  "stac_queueing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_queueing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/stac_cat_test.dir/cat/allocation_plan_test.cpp.o"
  "CMakeFiles/stac_cat_test.dir/cat/allocation_plan_test.cpp.o.d"
  "CMakeFiles/stac_cat_test.dir/cat/allocation_test.cpp.o"
  "CMakeFiles/stac_cat_test.dir/cat/allocation_test.cpp.o.d"
  "CMakeFiles/stac_cat_test.dir/cat/cat_controller_test.cpp.o"
  "CMakeFiles/stac_cat_test.dir/cat/cat_controller_test.cpp.o.d"
  "CMakeFiles/stac_cat_test.dir/cat/schemata_test.cpp.o"
  "CMakeFiles/stac_cat_test.dir/cat/schemata_test.cpp.o.d"
  "CMakeFiles/stac_cat_test.dir/cat/stap_test.cpp.o"
  "CMakeFiles/stac_cat_test.dir/cat/stap_test.cpp.o.d"
  "stac_cat_test"
  "stac_cat_test.pdb"
  "stac_cat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_cat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for stac_cat_test.
# This may be replaced when dependencies are built.

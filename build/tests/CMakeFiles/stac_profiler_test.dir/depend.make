# Empty dependencies file for stac_profiler_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stac_profiler_test.dir/profiler/profile_io_test.cpp.o"
  "CMakeFiles/stac_profiler_test.dir/profiler/profile_io_test.cpp.o.d"
  "CMakeFiles/stac_profiler_test.dir/profiler/profiler_test.cpp.o"
  "CMakeFiles/stac_profiler_test.dir/profiler/profiler_test.cpp.o.d"
  "CMakeFiles/stac_profiler_test.dir/profiler/runtime_condition_test.cpp.o"
  "CMakeFiles/stac_profiler_test.dir/profiler/runtime_condition_test.cpp.o.d"
  "CMakeFiles/stac_profiler_test.dir/profiler/stratified_sampler_test.cpp.o"
  "CMakeFiles/stac_profiler_test.dir/profiler/stratified_sampler_test.cpp.o.d"
  "stac_profiler_test"
  "stac_profiler_test.pdb"
  "stac_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

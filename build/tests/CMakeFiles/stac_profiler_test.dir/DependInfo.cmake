
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/profiler/profile_io_test.cpp" "tests/CMakeFiles/stac_profiler_test.dir/profiler/profile_io_test.cpp.o" "gcc" "tests/CMakeFiles/stac_profiler_test.dir/profiler/profile_io_test.cpp.o.d"
  "/root/repo/tests/profiler/profiler_test.cpp" "tests/CMakeFiles/stac_profiler_test.dir/profiler/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/stac_profiler_test.dir/profiler/profiler_test.cpp.o.d"
  "/root/repo/tests/profiler/runtime_condition_test.cpp" "tests/CMakeFiles/stac_profiler_test.dir/profiler/runtime_condition_test.cpp.o" "gcc" "tests/CMakeFiles/stac_profiler_test.dir/profiler/runtime_condition_test.cpp.o.d"
  "/root/repo/tests/profiler/stratified_sampler_test.cpp" "tests/CMakeFiles/stac_profiler_test.dir/profiler/stratified_sampler_test.cpp.o" "gcc" "tests/CMakeFiles/stac_profiler_test.dir/profiler/stratified_sampler_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/stac_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/stac_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/stac_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/cat/CMakeFiles/stac_cat.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/stac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/stac_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

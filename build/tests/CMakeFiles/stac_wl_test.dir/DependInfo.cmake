
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wl/access_stream_test.cpp" "tests/CMakeFiles/stac_wl_test.dir/wl/access_stream_test.cpp.o" "gcc" "tests/CMakeFiles/stac_wl_test.dir/wl/access_stream_test.cpp.o.d"
  "/root/repo/tests/wl/measure_test.cpp" "tests/CMakeFiles/stac_wl_test.dir/wl/measure_test.cpp.o" "gcc" "tests/CMakeFiles/stac_wl_test.dir/wl/measure_test.cpp.o.d"
  "/root/repo/tests/wl/microservice_graph_test.cpp" "tests/CMakeFiles/stac_wl_test.dir/wl/microservice_graph_test.cpp.o" "gcc" "tests/CMakeFiles/stac_wl_test.dir/wl/microservice_graph_test.cpp.o.d"
  "/root/repo/tests/wl/mrc_test.cpp" "tests/CMakeFiles/stac_wl_test.dir/wl/mrc_test.cpp.o" "gcc" "tests/CMakeFiles/stac_wl_test.dir/wl/mrc_test.cpp.o.d"
  "/root/repo/tests/wl/reuse_profile_test.cpp" "tests/CMakeFiles/stac_wl_test.dir/wl/reuse_profile_test.cpp.o" "gcc" "tests/CMakeFiles/stac_wl_test.dir/wl/reuse_profile_test.cpp.o.d"
  "/root/repo/tests/wl/workload_test.cpp" "tests/CMakeFiles/stac_wl_test.dir/wl/workload_test.cpp.o" "gcc" "tests/CMakeFiles/stac_wl_test.dir/wl/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/stac_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/stac_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/stac_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/cat/CMakeFiles/stac_cat.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/stac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/stac_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for stac_wl_test.
# This may be replaced when dependencies are built.

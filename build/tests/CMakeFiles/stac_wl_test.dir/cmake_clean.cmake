file(REMOVE_RECURSE
  "CMakeFiles/stac_wl_test.dir/wl/access_stream_test.cpp.o"
  "CMakeFiles/stac_wl_test.dir/wl/access_stream_test.cpp.o.d"
  "CMakeFiles/stac_wl_test.dir/wl/measure_test.cpp.o"
  "CMakeFiles/stac_wl_test.dir/wl/measure_test.cpp.o.d"
  "CMakeFiles/stac_wl_test.dir/wl/microservice_graph_test.cpp.o"
  "CMakeFiles/stac_wl_test.dir/wl/microservice_graph_test.cpp.o.d"
  "CMakeFiles/stac_wl_test.dir/wl/mrc_test.cpp.o"
  "CMakeFiles/stac_wl_test.dir/wl/mrc_test.cpp.o.d"
  "CMakeFiles/stac_wl_test.dir/wl/reuse_profile_test.cpp.o"
  "CMakeFiles/stac_wl_test.dir/wl/reuse_profile_test.cpp.o.d"
  "CMakeFiles/stac_wl_test.dir/wl/workload_test.cpp.o"
  "CMakeFiles/stac_wl_test.dir/wl/workload_test.cpp.o.d"
  "stac_wl_test"
  "stac_wl_test.pdb"
  "stac_wl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_wl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

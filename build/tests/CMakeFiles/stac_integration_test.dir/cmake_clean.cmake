file(REMOVE_RECURSE
  "CMakeFiles/stac_integration_test.dir/integration/persistence_test.cpp.o"
  "CMakeFiles/stac_integration_test.dir/integration/persistence_test.cpp.o.d"
  "CMakeFiles/stac_integration_test.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/stac_integration_test.dir/integration/pipeline_test.cpp.o.d"
  "stac_integration_test"
  "stac_integration_test.pdb"
  "stac_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

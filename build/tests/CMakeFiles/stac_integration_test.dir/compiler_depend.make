# Empty compiler generated dependencies file for stac_integration_test.
# This may be replaced when dependencies are built.

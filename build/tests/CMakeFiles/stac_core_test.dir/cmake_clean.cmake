file(REMOVE_RECURSE
  "CMakeFiles/stac_core_test.dir/core/baselines_test.cpp.o"
  "CMakeFiles/stac_core_test.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/stac_core_test.dir/core/ea_model_test.cpp.o"
  "CMakeFiles/stac_core_test.dir/core/ea_model_test.cpp.o.d"
  "CMakeFiles/stac_core_test.dir/core/policy_explorer_test.cpp.o"
  "CMakeFiles/stac_core_test.dir/core/policy_explorer_test.cpp.o.d"
  "CMakeFiles/stac_core_test.dir/core/profile_library_test.cpp.o"
  "CMakeFiles/stac_core_test.dir/core/profile_library_test.cpp.o.d"
  "CMakeFiles/stac_core_test.dir/core/rt_predictor_test.cpp.o"
  "CMakeFiles/stac_core_test.dir/core/rt_predictor_test.cpp.o.d"
  "CMakeFiles/stac_core_test.dir/core/stac_manager_test.cpp.o"
  "CMakeFiles/stac_core_test.dir/core/stac_manager_test.cpp.o.d"
  "stac_core_test"
  "stac_core_test.pdb"
  "stac_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

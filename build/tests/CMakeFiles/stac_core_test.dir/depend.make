# Empty dependencies file for stac_core_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for stac_ml_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stac_ml_test.dir/ml/cascade_test.cpp.o"
  "CMakeFiles/stac_ml_test.dir/ml/cascade_test.cpp.o.d"
  "CMakeFiles/stac_ml_test.dir/ml/cross_validation_test.cpp.o"
  "CMakeFiles/stac_ml_test.dir/ml/cross_validation_test.cpp.o.d"
  "CMakeFiles/stac_ml_test.dir/ml/dataset_test.cpp.o"
  "CMakeFiles/stac_ml_test.dir/ml/dataset_test.cpp.o.d"
  "CMakeFiles/stac_ml_test.dir/ml/decision_tree_test.cpp.o"
  "CMakeFiles/stac_ml_test.dir/ml/decision_tree_test.cpp.o.d"
  "CMakeFiles/stac_ml_test.dir/ml/deep_forest_test.cpp.o"
  "CMakeFiles/stac_ml_test.dir/ml/deep_forest_test.cpp.o.d"
  "CMakeFiles/stac_ml_test.dir/ml/kmeans_test.cpp.o"
  "CMakeFiles/stac_ml_test.dir/ml/kmeans_test.cpp.o.d"
  "CMakeFiles/stac_ml_test.dir/ml/linear_regression_test.cpp.o"
  "CMakeFiles/stac_ml_test.dir/ml/linear_regression_test.cpp.o.d"
  "CMakeFiles/stac_ml_test.dir/ml/mgs_test.cpp.o"
  "CMakeFiles/stac_ml_test.dir/ml/mgs_test.cpp.o.d"
  "CMakeFiles/stac_ml_test.dir/ml/neural_net_test.cpp.o"
  "CMakeFiles/stac_ml_test.dir/ml/neural_net_test.cpp.o.d"
  "CMakeFiles/stac_ml_test.dir/ml/random_forest_test.cpp.o"
  "CMakeFiles/stac_ml_test.dir/ml/random_forest_test.cpp.o.d"
  "stac_ml_test"
  "stac_ml_test.pdb"
  "stac_ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/arrival.cpp" "src/queueing/CMakeFiles/stac_queueing.dir/arrival.cpp.o" "gcc" "src/queueing/CMakeFiles/stac_queueing.dir/arrival.cpp.o.d"
  "/root/repo/src/queueing/ggk_simulator.cpp" "src/queueing/CMakeFiles/stac_queueing.dir/ggk_simulator.cpp.o" "gcc" "src/queueing/CMakeFiles/stac_queueing.dir/ggk_simulator.cpp.o.d"
  "/root/repo/src/queueing/shared_region.cpp" "src/queueing/CMakeFiles/stac_queueing.dir/shared_region.cpp.o" "gcc" "src/queueing/CMakeFiles/stac_queueing.dir/shared_region.cpp.o.d"
  "/root/repo/src/queueing/testbed.cpp" "src/queueing/CMakeFiles/stac_queueing.dir/testbed.cpp.o" "gcc" "src/queueing/CMakeFiles/stac_queueing.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wl/CMakeFiles/stac_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/cat/CMakeFiles/stac_cat.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/stac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for stac_queueing.
# This may be replaced when dependencies are built.

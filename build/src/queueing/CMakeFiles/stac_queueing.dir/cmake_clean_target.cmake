file(REMOVE_RECURSE
  "libstac_queueing.a"
)

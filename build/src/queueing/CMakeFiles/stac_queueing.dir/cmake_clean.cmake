file(REMOVE_RECURSE
  "CMakeFiles/stac_queueing.dir/arrival.cpp.o"
  "CMakeFiles/stac_queueing.dir/arrival.cpp.o.d"
  "CMakeFiles/stac_queueing.dir/ggk_simulator.cpp.o"
  "CMakeFiles/stac_queueing.dir/ggk_simulator.cpp.o.d"
  "CMakeFiles/stac_queueing.dir/shared_region.cpp.o"
  "CMakeFiles/stac_queueing.dir/shared_region.cpp.o.d"
  "CMakeFiles/stac_queueing.dir/testbed.cpp.o"
  "CMakeFiles/stac_queueing.dir/testbed.cpp.o.d"
  "libstac_queueing.a"
  "libstac_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stac_ml.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stac_ml.dir/cascade.cpp.o"
  "CMakeFiles/stac_ml.dir/cascade.cpp.o.d"
  "CMakeFiles/stac_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/stac_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/stac_ml.dir/dataset.cpp.o"
  "CMakeFiles/stac_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/stac_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/stac_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/stac_ml.dir/deep_forest.cpp.o"
  "CMakeFiles/stac_ml.dir/deep_forest.cpp.o.d"
  "CMakeFiles/stac_ml.dir/kmeans.cpp.o"
  "CMakeFiles/stac_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/stac_ml.dir/linear_regression.cpp.o"
  "CMakeFiles/stac_ml.dir/linear_regression.cpp.o.d"
  "CMakeFiles/stac_ml.dir/mgs.cpp.o"
  "CMakeFiles/stac_ml.dir/mgs.cpp.o.d"
  "CMakeFiles/stac_ml.dir/neural_net.cpp.o"
  "CMakeFiles/stac_ml.dir/neural_net.cpp.o.d"
  "CMakeFiles/stac_ml.dir/random_forest.cpp.o"
  "CMakeFiles/stac_ml.dir/random_forest.cpp.o.d"
  "libstac_ml.a"
  "libstac_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libstac_ml.a"
)

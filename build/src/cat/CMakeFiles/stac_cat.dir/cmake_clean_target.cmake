file(REMOVE_RECURSE
  "libstac_cat.a"
)

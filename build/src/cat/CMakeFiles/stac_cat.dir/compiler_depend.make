# Empty compiler generated dependencies file for stac_cat.
# This may be replaced when dependencies are built.

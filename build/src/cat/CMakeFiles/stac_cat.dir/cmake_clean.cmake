file(REMOVE_RECURSE
  "CMakeFiles/stac_cat.dir/allocation.cpp.o"
  "CMakeFiles/stac_cat.dir/allocation.cpp.o.d"
  "CMakeFiles/stac_cat.dir/allocation_plan.cpp.o"
  "CMakeFiles/stac_cat.dir/allocation_plan.cpp.o.d"
  "CMakeFiles/stac_cat.dir/cat_controller.cpp.o"
  "CMakeFiles/stac_cat.dir/cat_controller.cpp.o.d"
  "CMakeFiles/stac_cat.dir/schemata.cpp.o"
  "CMakeFiles/stac_cat.dir/schemata.cpp.o.d"
  "libstac_cat.a"
  "libstac_cat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_cat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

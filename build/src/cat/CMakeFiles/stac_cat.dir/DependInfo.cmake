
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cat/allocation.cpp" "src/cat/CMakeFiles/stac_cat.dir/allocation.cpp.o" "gcc" "src/cat/CMakeFiles/stac_cat.dir/allocation.cpp.o.d"
  "/root/repo/src/cat/allocation_plan.cpp" "src/cat/CMakeFiles/stac_cat.dir/allocation_plan.cpp.o" "gcc" "src/cat/CMakeFiles/stac_cat.dir/allocation_plan.cpp.o.d"
  "/root/repo/src/cat/cat_controller.cpp" "src/cat/CMakeFiles/stac_cat.dir/cat_controller.cpp.o" "gcc" "src/cat/CMakeFiles/stac_cat.dir/cat_controller.cpp.o.d"
  "/root/repo/src/cat/schemata.cpp" "src/cat/CMakeFiles/stac_cat.dir/schemata.cpp.o" "gcc" "src/cat/CMakeFiles/stac_cat.dir/schemata.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cachesim/CMakeFiles/stac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wl/access_stream.cpp" "src/wl/CMakeFiles/stac_wl.dir/access_stream.cpp.o" "gcc" "src/wl/CMakeFiles/stac_wl.dir/access_stream.cpp.o.d"
  "/root/repo/src/wl/benchmark_suite.cpp" "src/wl/CMakeFiles/stac_wl.dir/benchmark_suite.cpp.o" "gcc" "src/wl/CMakeFiles/stac_wl.dir/benchmark_suite.cpp.o.d"
  "/root/repo/src/wl/measure.cpp" "src/wl/CMakeFiles/stac_wl.dir/measure.cpp.o" "gcc" "src/wl/CMakeFiles/stac_wl.dir/measure.cpp.o.d"
  "/root/repo/src/wl/microservice_graph.cpp" "src/wl/CMakeFiles/stac_wl.dir/microservice_graph.cpp.o" "gcc" "src/wl/CMakeFiles/stac_wl.dir/microservice_graph.cpp.o.d"
  "/root/repo/src/wl/mrc.cpp" "src/wl/CMakeFiles/stac_wl.dir/mrc.cpp.o" "gcc" "src/wl/CMakeFiles/stac_wl.dir/mrc.cpp.o.d"
  "/root/repo/src/wl/reuse_profile.cpp" "src/wl/CMakeFiles/stac_wl.dir/reuse_profile.cpp.o" "gcc" "src/wl/CMakeFiles/stac_wl.dir/reuse_profile.cpp.o.d"
  "/root/repo/src/wl/workload.cpp" "src/wl/CMakeFiles/stac_wl.dir/workload.cpp.o" "gcc" "src/wl/CMakeFiles/stac_wl.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cachesim/CMakeFiles/stac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/cat/CMakeFiles/stac_cat.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/stac_wl.dir/access_stream.cpp.o"
  "CMakeFiles/stac_wl.dir/access_stream.cpp.o.d"
  "CMakeFiles/stac_wl.dir/benchmark_suite.cpp.o"
  "CMakeFiles/stac_wl.dir/benchmark_suite.cpp.o.d"
  "CMakeFiles/stac_wl.dir/measure.cpp.o"
  "CMakeFiles/stac_wl.dir/measure.cpp.o.d"
  "CMakeFiles/stac_wl.dir/microservice_graph.cpp.o"
  "CMakeFiles/stac_wl.dir/microservice_graph.cpp.o.d"
  "CMakeFiles/stac_wl.dir/mrc.cpp.o"
  "CMakeFiles/stac_wl.dir/mrc.cpp.o.d"
  "CMakeFiles/stac_wl.dir/reuse_profile.cpp.o"
  "CMakeFiles/stac_wl.dir/reuse_profile.cpp.o.d"
  "CMakeFiles/stac_wl.dir/workload.cpp.o"
  "CMakeFiles/stac_wl.dir/workload.cpp.o.d"
  "libstac_wl.a"
  "libstac_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libstac_wl.a"
)

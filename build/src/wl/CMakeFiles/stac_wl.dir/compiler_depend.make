# Empty compiler generated dependencies file for stac_wl.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for stac_profiler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstac_profiler.a"
)

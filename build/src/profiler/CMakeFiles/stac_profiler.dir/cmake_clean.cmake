file(REMOVE_RECURSE
  "CMakeFiles/stac_profiler.dir/profile_io.cpp.o"
  "CMakeFiles/stac_profiler.dir/profile_io.cpp.o.d"
  "CMakeFiles/stac_profiler.dir/profiler.cpp.o"
  "CMakeFiles/stac_profiler.dir/profiler.cpp.o.d"
  "CMakeFiles/stac_profiler.dir/runtime_condition.cpp.o"
  "CMakeFiles/stac_profiler.dir/runtime_condition.cpp.o.d"
  "CMakeFiles/stac_profiler.dir/stratified_sampler.cpp.o"
  "CMakeFiles/stac_profiler.dir/stratified_sampler.cpp.o.d"
  "libstac_profiler.a"
  "libstac_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/stac_common.dir/matrix.cpp.o"
  "CMakeFiles/stac_common.dir/matrix.cpp.o.d"
  "CMakeFiles/stac_common.dir/rng.cpp.o"
  "CMakeFiles/stac_common.dir/rng.cpp.o.d"
  "CMakeFiles/stac_common.dir/stats.cpp.o"
  "CMakeFiles/stac_common.dir/stats.cpp.o.d"
  "CMakeFiles/stac_common.dir/table.cpp.o"
  "CMakeFiles/stac_common.dir/table.cpp.o.d"
  "CMakeFiles/stac_common.dir/thread_pool.cpp.o"
  "CMakeFiles/stac_common.dir/thread_pool.cpp.o.d"
  "libstac_common.a"
  "libstac_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

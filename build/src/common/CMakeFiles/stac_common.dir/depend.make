# Empty dependencies file for stac_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstac_common.a"
)

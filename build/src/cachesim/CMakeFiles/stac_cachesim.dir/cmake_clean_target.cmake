file(REMOVE_RECURSE
  "libstac_cachesim.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cachesim/cache_hierarchy.cpp" "src/cachesim/CMakeFiles/stac_cachesim.dir/cache_hierarchy.cpp.o" "gcc" "src/cachesim/CMakeFiles/stac_cachesim.dir/cache_hierarchy.cpp.o.d"
  "/root/repo/src/cachesim/cache_level.cpp" "src/cachesim/CMakeFiles/stac_cachesim.dir/cache_level.cpp.o" "gcc" "src/cachesim/CMakeFiles/stac_cachesim.dir/cache_level.cpp.o.d"
  "/root/repo/src/cachesim/perf_counters.cpp" "src/cachesim/CMakeFiles/stac_cachesim.dir/perf_counters.cpp.o" "gcc" "src/cachesim/CMakeFiles/stac_cachesim.dir/perf_counters.cpp.o.d"
  "/root/repo/src/cachesim/processor_presets.cpp" "src/cachesim/CMakeFiles/stac_cachesim.dir/processor_presets.cpp.o" "gcc" "src/cachesim/CMakeFiles/stac_cachesim.dir/processor_presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/stac_cachesim.dir/cache_hierarchy.cpp.o"
  "CMakeFiles/stac_cachesim.dir/cache_hierarchy.cpp.o.d"
  "CMakeFiles/stac_cachesim.dir/cache_level.cpp.o"
  "CMakeFiles/stac_cachesim.dir/cache_level.cpp.o.d"
  "CMakeFiles/stac_cachesim.dir/perf_counters.cpp.o"
  "CMakeFiles/stac_cachesim.dir/perf_counters.cpp.o.d"
  "CMakeFiles/stac_cachesim.dir/processor_presets.cpp.o"
  "CMakeFiles/stac_cachesim.dir/processor_presets.cpp.o.d"
  "libstac_cachesim.a"
  "libstac_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

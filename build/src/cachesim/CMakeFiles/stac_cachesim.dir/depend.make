# Empty dependencies file for stac_cachesim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstac_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/stac_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/stac_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/direct_rt_model.cpp" "src/core/CMakeFiles/stac_core.dir/direct_rt_model.cpp.o" "gcc" "src/core/CMakeFiles/stac_core.dir/direct_rt_model.cpp.o.d"
  "/root/repo/src/core/ea_model.cpp" "src/core/CMakeFiles/stac_core.dir/ea_model.cpp.o" "gcc" "src/core/CMakeFiles/stac_core.dir/ea_model.cpp.o.d"
  "/root/repo/src/core/policy_explorer.cpp" "src/core/CMakeFiles/stac_core.dir/policy_explorer.cpp.o" "gcc" "src/core/CMakeFiles/stac_core.dir/policy_explorer.cpp.o.d"
  "/root/repo/src/core/profile_library.cpp" "src/core/CMakeFiles/stac_core.dir/profile_library.cpp.o" "gcc" "src/core/CMakeFiles/stac_core.dir/profile_library.cpp.o.d"
  "/root/repo/src/core/rt_predictor.cpp" "src/core/CMakeFiles/stac_core.dir/rt_predictor.cpp.o" "gcc" "src/core/CMakeFiles/stac_core.dir/rt_predictor.cpp.o.d"
  "/root/repo/src/core/stac_manager.cpp" "src/core/CMakeFiles/stac_core.dir/stac_manager.cpp.o" "gcc" "src/core/CMakeFiles/stac_core.dir/stac_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profiler/CMakeFiles/stac_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/stac_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/stac_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/cat/CMakeFiles/stac_cat.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/stac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/stac_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/stac_core.dir/baselines.cpp.o"
  "CMakeFiles/stac_core.dir/baselines.cpp.o.d"
  "CMakeFiles/stac_core.dir/direct_rt_model.cpp.o"
  "CMakeFiles/stac_core.dir/direct_rt_model.cpp.o.d"
  "CMakeFiles/stac_core.dir/ea_model.cpp.o"
  "CMakeFiles/stac_core.dir/ea_model.cpp.o.d"
  "CMakeFiles/stac_core.dir/policy_explorer.cpp.o"
  "CMakeFiles/stac_core.dir/policy_explorer.cpp.o.d"
  "CMakeFiles/stac_core.dir/profile_library.cpp.o"
  "CMakeFiles/stac_core.dir/profile_library.cpp.o.d"
  "CMakeFiles/stac_core.dir/rt_predictor.cpp.o"
  "CMakeFiles/stac_core.dir/rt_predictor.cpp.o.d"
  "CMakeFiles/stac_core.dir/stac_manager.cpp.o"
  "CMakeFiles/stac_core.dir/stac_manager.cpp.o.d"
  "libstac_core.a"
  "libstac_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stac_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for stac_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_profiling_time.dir/bench_profiling_time.cpp.o"
  "CMakeFiles/bench_profiling_time.dir/bench_profiling_time.cpp.o.d"
  "bench_profiling_time"
  "bench_profiling_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profiling_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

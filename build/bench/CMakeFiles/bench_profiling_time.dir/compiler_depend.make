# Empty compiler generated dependencies file for bench_profiling_time.
# This may be replaced when dependencies are built.

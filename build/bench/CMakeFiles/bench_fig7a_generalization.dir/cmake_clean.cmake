file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_generalization.dir/bench_fig7a_generalization.cpp.o"
  "CMakeFiles/bench_fig7a_generalization.dir/bench_fig7a_generalization.cpp.o.d"
  "bench_fig7a_generalization"
  "bench_fig7a_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

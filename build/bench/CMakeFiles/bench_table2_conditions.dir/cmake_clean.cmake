file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_conditions.dir/bench_table2_conditions.cpp.o"
  "CMakeFiles/bench_table2_conditions.dir/bench_table2_conditions.cpp.o.d"
  "bench_table2_conditions"
  "bench_table2_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_conditions.cpp" "bench/CMakeFiles/bench_table2_conditions.dir/bench_table2_conditions.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_conditions.dir/bench_table2_conditions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/stac_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/stac_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/stac_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/cat/CMakeFiles/stac_cat.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/stac_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/stac_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_mrc_validation.dir/bench_mrc_validation.cpp.o"
  "CMakeFiles/bench_mrc_validation.dir/bench_mrc_validation.cpp.o.d"
  "bench_mrc_validation"
  "bench_mrc_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mrc_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

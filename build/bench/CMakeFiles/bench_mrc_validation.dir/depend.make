# Empty dependencies file for bench_mrc_validation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7c_mgs.dir/bench_fig7c_mgs.cpp.o"
  "CMakeFiles/bench_fig7c_mgs.dir/bench_fig7c_mgs.cpp.o.d"
  "bench_fig7c_mgs"
  "bench_fig7c_mgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c_mgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

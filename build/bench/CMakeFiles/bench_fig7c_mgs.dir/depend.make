# Empty dependencies file for bench_fig7c_mgs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_stratified_sampling.dir/bench_stratified_sampling.cpp.o"
  "CMakeFiles/bench_stratified_sampling.dir/bench_stratified_sampling.cpp.o.d"
  "bench_stratified_sampling"
  "bench_stratified_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stratified_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

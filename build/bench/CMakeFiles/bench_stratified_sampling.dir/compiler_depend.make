# Empty compiler generated dependencies file for bench_stratified_sampling.
# This may be replaced when dependencies are built.

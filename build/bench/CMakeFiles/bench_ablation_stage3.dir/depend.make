# Empty dependencies file for bench_ablation_stage3.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stage3.dir/bench_ablation_stage3.cpp.o"
  "CMakeFiles/bench_ablation_stage3.dir/bench_ablation_stage3.cpp.o.d"
  "bench_ablation_stage3"
  "bench_ablation_stage3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stage3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

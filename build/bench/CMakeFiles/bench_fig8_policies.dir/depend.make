# Empty dependencies file for bench_fig8_policies.
# This may be replaced when dependencies are built.

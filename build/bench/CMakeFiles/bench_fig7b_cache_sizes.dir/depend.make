# Empty dependencies file for bench_fig7b_cache_sizes.
# This may be replaced when dependencies are built.

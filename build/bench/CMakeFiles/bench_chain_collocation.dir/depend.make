# Empty dependencies file for bench_chain_collocation.
# This may be replaced when dependencies are built.

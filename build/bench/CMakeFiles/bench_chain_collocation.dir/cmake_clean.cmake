file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_collocation.dir/bench_chain_collocation.cpp.o"
  "CMakeFiles/bench_chain_collocation.dir/bench_chain_collocation.cpp.o.d"
  "bench_chain_collocation"
  "bench_chain_collocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_collocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

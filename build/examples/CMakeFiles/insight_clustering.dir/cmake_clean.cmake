file(REMOVE_RECURSE
  "CMakeFiles/insight_clustering.dir/insight_clustering.cpp.o"
  "CMakeFiles/insight_clustering.dir/insight_clustering.cpp.o.d"
  "insight_clustering"
  "insight_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insight_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for insight_clustering.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/social_redis_sprint.dir/social_redis_sprint.cpp.o"
  "CMakeFiles/social_redis_sprint.dir/social_redis_sprint.cpp.o.d"
  "social_redis_sprint"
  "social_redis_sprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_redis_sprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for social_redis_sprint.
# This may be replaced when dependencies are built.

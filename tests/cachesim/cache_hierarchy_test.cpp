#include "cachesim/cache_hierarchy.hpp"

#include <gtest/gtest.h>

#include "cachesim/cache_config.hpp"
#include "common/check.hpp"

namespace stac::cachesim {
namespace {

HierarchyConfig small_hw() {
  HierarchyConfig c;
  c.l1d = {8 * 1024, 8, 64, 4};    // 16 sets
  c.l1i = {8 * 1024, 8, 64, 4};
  c.l2 = {64 * 1024, 16, 64, 12};  // 64 sets
  c.llc = {1024 * 1024, 8, 64, 40};  // 2048 sets
  c.memory_latency_cycles = 200;
  return c;
}

TEST(CacheHierarchy, FirstAccessMissesEverywhere) {
  CacheHierarchy hw(small_hw(), 2);
  const auto latency = hw.access(0, {0x1000, AccessType::kLoad});
  // L1 + L2 + LLC + memory latencies all paid.
  EXPECT_EQ(latency, 4u + 12u + 40u + 200u);
  const auto c = hw.counters(0);
  EXPECT_EQ(c.get(Counter::kL1dLoads), 1u);
  EXPECT_EQ(c.get(Counter::kL1dLoadMisses), 1u);
  EXPECT_EQ(c.get(Counter::kL2LoadMisses), 1u);
  EXPECT_EQ(c.get(Counter::kLlcLoadMisses), 1u);
  EXPECT_EQ(c.get(Counter::kMemReads), 1u);
}

TEST(CacheHierarchy, SecondAccessHitsL1) {
  CacheHierarchy hw(small_hw(), 2);
  hw.access(0, {0x1000, AccessType::kLoad});
  const auto latency = hw.access(0, {0x1000, AccessType::kLoad});
  EXPECT_EQ(latency, 4u);
}

TEST(CacheHierarchy, StoresCountSeparately) {
  CacheHierarchy hw(small_hw(), 1);
  hw.access(0, {0x2000, AccessType::kStore});
  const auto c = hw.counters(0);
  EXPECT_EQ(c.get(Counter::kL1dStores), 1u);
  EXPECT_EQ(c.get(Counter::kL1dStoreMisses), 1u);
  EXPECT_EQ(c.get(Counter::kMemWrites), 1u);
  EXPECT_EQ(c.get(Counter::kL1dLoads), 0u);
}

TEST(CacheHierarchy, IfetchUsesL1i) {
  CacheHierarchy hw(small_hw(), 1);
  hw.access(0, {0x3000, AccessType::kIfetch});
  const auto c = hw.counters(0);
  EXPECT_EQ(c.get(Counter::kL1iLoads), 1u);
  EXPECT_EQ(c.get(Counter::kL1iLoadMisses), 1u);
  EXPECT_EQ(c.get(Counter::kL1dLoads), 0u);
}

TEST(CacheHierarchy, PrivateL1L2SharedLlc) {
  CacheHierarchy hw(small_hw(), 2);
  hw.access(0, {0x1000, AccessType::kLoad});
  // Class 1 accessing the same address: private L1/L2 miss, but the LLC is
  // shared so the line is already there.
  const auto latency = hw.access(1, {0x1000, AccessType::kLoad});
  EXPECT_EQ(latency, 4u + 12u + 40u);
  const auto c1 = hw.counters(1);
  EXPECT_EQ(c1.get(Counter::kLlcLoadMisses), 0u);
  EXPECT_EQ(c1.get(Counter::kL1dLoadMisses), 1u);
}

TEST(CacheHierarchy, LlcMaskRestrictsFootprint) {
  CacheHierarchy hw(small_hw(), 2);
  hw.set_llc_fill_mask(0, 0b0001);  // one way only
  // Touch a lot of lines; LLC occupancy of class 0 is bounded by sets*1.
  for (std::uint64_t i = 0; i < 10000; ++i)
    hw.access(0, {i * 64, AccessType::kLoad});
  EXPECT_LE(hw.llc_occupancy(0), hw.config().llc.sets());
}

TEST(CacheHierarchy, MaskSwitchTakesEffect) {
  CacheHierarchy hw(small_hw(), 1);
  hw.set_llc_fill_mask(0, 0b0001);
  EXPECT_EQ(hw.llc_fill_mask(0), 0b0001u);
  hw.set_llc_fill_mask(0, 0b0111);
  EXPECT_EQ(hw.llc_fill_mask(0), 0b0111u);
}

TEST(CacheHierarchy, ResetClearsCountersAndContents) {
  CacheHierarchy hw(small_hw(), 1);
  hw.access(0, {0x1000, AccessType::kLoad});
  hw.retire_instructions(0, 100);
  hw.reset();
  const auto c = hw.counters(0);
  EXPECT_EQ(c.get(Counter::kL1dLoads), 0u);
  EXPECT_EQ(c.get(Counter::kInstructions), 0u);
  // Line is gone: full latency again.
  EXPECT_EQ(hw.access(0, {0x1000, AccessType::kLoad}), 4u + 12u + 40u + 200u);
}

TEST(CacheHierarchy, IpcGaugeComputed) {
  CacheHierarchy hw(small_hw(), 1);
  hw.retire_instructions(0, 1000);
  const auto c = hw.counters(0);
  EXPECT_EQ(c.get(Counter::kIpcX1000), 1000u);  // 1.0 IPC, no stalls
  hw.access(0, {0x5000, AccessType::kLoad});    // adds stall cycles
  const auto c2 = hw.counters(0);
  EXPECT_LT(c2.get(Counter::kIpcX1000), 1000u);
}

TEST(CacheHierarchy, OccupancyGaugeReflectsLlc) {
  CacheHierarchy hw(small_hw(), 2);
  for (std::uint64_t i = 0; i < 100; ++i)
    hw.access(0, {i * 64, AccessType::kLoad});
  const auto c = hw.counters(0);
  EXPECT_EQ(c.get(Counter::kLlcOccupancyLines), 100u);
}

TEST(CacheHierarchy, InvalidClassThrows) {
  CacheHierarchy hw(small_hw(), 2);
  EXPECT_THROW(hw.access(2, {0, AccessType::kLoad}), ContractViolation);
  EXPECT_THROW(hw.set_llc_fill_mask(5, 1), ContractViolation);
}

// --- replay() identity -----------------------------------------------------
//
// replay() promises to be equivalent to a per-reference access() loop:
// same latency sum, bit-identical counters, same LLC occupancy.  The
// batched loop mirrors access() bump-for-bump, and these replays are what
// hold the two implementations together (see cache_hierarchy.cpp).

struct RecordedTrace {
  std::vector<MemoryAccess> refs;
  std::vector<ClassId> classes;
};

// Adversarial mix: word-granular loop walks, random hot lines, cold lines
// that sweep past every level, all four access types (including prefetch),
// three classes with asymmetric CAT masks.
RecordedTrace adversarial_trace(std::size_t n, std::uint64_t seed) {
  RecordedTrace t;
  t.refs.reserve(n);
  t.classes.reserve(n);
  std::uint64_t s = seed | 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  std::uint64_t seq[3] = {0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<ClassId>(next() % 3);
    const std::uint64_t base = (cls + 1) * (1ULL << 32);
    const std::uint64_t pick = next() % 10;
    std::uint64_t addr;
    if (pick < 5) {
      addr = base + (seq[cls] += 8) % (4 * 1024);  // L1-resident walk
    } else if (pick < 8) {
      addr = base + next() % (32 * 1024);  // hot: L2 traffic
    } else {
      addr = base + next() % (4 * 1024 * 1024);  // cold: LLC + memory
    }
    auto type = AccessType::kLoad;
    if (pick == 0) type = AccessType::kStore;
    if (pick == 8) type = AccessType::kIfetch;
    if (pick == 9) type = AccessType::kPrefetch;
    t.refs.push_back({addr, type});
    t.classes.push_back(cls);
  }
  return t;
}

// Drive one hierarchy per-access and an identically configured one through
// replay(); every observable must match bitwise.
void expect_replay_identical(const HierarchyConfig& cfg) {
  const RecordedTrace t = adversarial_trace(60000, 0xFEEDull);
  CacheHierarchy loop_hw(cfg, 3);
  CacheHierarchy replay_hw(cfg, 3);
  const WayMask full = loop_hw.llc().full_mask();
  const WayMask masks[3] = {full, full & 0x3F, full & 0x1};
  for (ClassId c = 0; c < 3; ++c) {
    loop_hw.set_llc_fill_mask(c, masks[c]);
    replay_hw.set_llc_fill_mask(c, masks[c]);
  }

  std::uint64_t loop_total = 0;
  for (std::size_t i = 0; i < t.refs.size(); ++i)
    loop_total += loop_hw.access(t.classes[i], t.refs[i]);
  const std::uint64_t replay_total =
      replay_hw.replay(t.refs.data(), t.classes.data(), t.refs.size());

  EXPECT_EQ(loop_total, replay_total);
  for (ClassId c = 0; c < 3; ++c) {
    EXPECT_EQ(loop_hw.counters(c).values, replay_hw.counters(c).values)
        << "class " << static_cast<int>(c);
    EXPECT_EQ(loop_hw.llc_occupancy(c), replay_hw.llc_occupancy(c));
  }
}

// Tiny sizes but 8/8/16/20 ways: takes the fully specialized replay body
// (the default-Xeon tuple) while keeping every miss path hot.
TEST(CacheHierarchyReplay, IdenticalOnSpecializedGeometry) {
  HierarchyConfig cfg;
  cfg.l1d = {4 * 1024, 8, 64, 4};     // 8 sets
  cfg.l1i = {4 * 1024, 8, 64, 4};
  cfg.l2 = {16 * 1024, 16, 64, 12};   // 16 sets
  cfg.llc = {160 * 1024, 20, 64, 40};  // 128 sets
  ASSERT_TRUE(cfg.valid());
  expect_replay_identical(cfg);
}

// small_hw way widths miss the specialized tuple: generic replay body over
// SoA levels.
TEST(CacheHierarchyReplay, IdenticalOnGenericSoaGeometry) {
  expect_replay_identical(small_hw());
}

// Legacy array-of-Way layout everywhere: generic replay body over the
// reference access path.
TEST(CacheHierarchyReplay, IdenticalOnLegacyLayout) {
  HierarchyConfig cfg = small_hw();
  cfg.l1d.soa = cfg.l1i.soa = cfg.l2.soa = cfg.llc.soa = false;
  expect_replay_identical(cfg);
}

// SoA and legacy layouts must agree with each other end to end as well.
TEST(CacheHierarchyReplay, SoaAndLegacyReplaysAgree) {
  HierarchyConfig legacy = small_hw();
  legacy.l1d.soa = legacy.l1i.soa = legacy.l2.soa = legacy.llc.soa = false;
  const RecordedTrace t = adversarial_trace(60000, 0xBEEFull);
  CacheHierarchy a(small_hw(), 3);
  CacheHierarchy b(legacy, 3);
  const std::uint64_t ta = a.replay(t.refs.data(), t.classes.data(),
                                    t.refs.size());
  const std::uint64_t tb = b.replay(t.refs.data(), t.classes.data(),
                                    t.refs.size());
  EXPECT_EQ(ta, tb);
  for (ClassId c = 0; c < 3; ++c)
    EXPECT_EQ(a.counters(c).values, b.counters(c).values);
}

TEST(CacheHierarchyReplay, EmptyTraceReturnsZero) {
  CacheHierarchy hw(small_hw(), 2);
  EXPECT_EQ(hw.replay(nullptr, nullptr, 0), 0u);
}

TEST(CacheHierarchyReplay, OutOfRangeClassThrows) {
  CacheHierarchy hw(small_hw(), 2);
  const MemoryAccess ref{0x1000, AccessType::kLoad};
  const ClassId bad = 7;
  EXPECT_THROW(hw.replay(&ref, &bad, 1), ContractViolation);
}

// All processor presets must have valid geometry and Fig. 7b's LLC sizes.
class PresetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PresetSweep, GeometryValidAndConstructible) {
  const auto& cfg = presets::all()[GetParam()];
  EXPECT_TRUE(cfg.valid()) << cfg.name;
  CacheHierarchy hw(cfg, 4);
  EXPECT_EQ(hw.config().llc.ways, cfg.llc.ways);
  // A line installed is a line found.
  hw.access(0, {0xABC0, AccessType::kLoad});
  EXPECT_LT(hw.access(0, {0xABC0, AccessType::kLoad}),
            cfg.memory_latency_cycles);
}

INSTANTIATE_TEST_SUITE_P(Presets, PresetSweep,
                         ::testing::Range<std::size_t>(0, 9));

TEST(Presets, LlcSizesMatchPaper) {
  EXPECT_EQ(presets::xeon_e5_2683().llc.size_bytes, 40u * 1024 * 1024);
  EXPECT_EQ(presets::xeon_e5_2683().llc.ways, 20u);
  EXPECT_EQ(presets::xeon_2620().llc.size_bytes, 20u * 1024 * 1024);
  EXPECT_EQ(presets::xeon_2650().llc.size_bytes, 30u * 1024 * 1024);
  EXPECT_EQ(presets::xeon_platinum_8275_72mb().llc.size_bytes,
            72u * 1024 * 1024);
}

}  // namespace
}  // namespace stac::cachesim

#include "cachesim/cache_level.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::cachesim {
namespace {

LevelConfig tiny() {
  // 4 sets x 4 ways x 64B = 1 KB.
  return LevelConfig{1024, 4, 64, 1};
}

TEST(LevelConfig, ValidityRules) {
  EXPECT_TRUE(tiny().valid());
  const LevelConfig zero_size{0, 4, 64, 1};
  EXPECT_FALSE(zero_size.valid());
  const LevelConfig zero_ways{1024, 0, 64, 1};
  EXPECT_FALSE(zero_ways.valid());
  // 3 sets: not a power of two.
  const LevelConfig three_sets{3 * 4 * 64, 4, 64, 1};
  EXPECT_FALSE(three_sets.valid());
}

TEST(CacheLevel, MissThenHit) {
  CacheLevel c(tiny());
  const auto first = c.access(100, c.full_mask(), 0);
  EXPECT_FALSE(first.hit);
  const auto second = c.access(100, c.full_mask(), 0);
  EXPECT_TRUE(second.hit);
  EXPECT_TRUE(c.contains(100));
  EXPECT_FALSE(c.contains(101));
}

TEST(CacheLevel, LruEvictionWithinSet) {
  CacheLevel c(tiny());
  // 4 ways: fill the set with lines mapping to set 0 (line % 4 == 0).
  for (std::uint64_t i = 0; i < 4; ++i) c.access(i * 4, c.full_mask(), 0);
  // Touch line 0 to refresh its recency; then install a 5th line.
  c.access(0, c.full_mask(), 0);
  const auto r = c.access(16 * 4, c.full_mask(), 0);
  EXPECT_TRUE(r.evicted);
  // LRU victim should be line 4 (oldest untouched), so 0 survives.
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(4));
}

TEST(CacheLevel, FillMaskRestrictsVictims) {
  CacheLevel c(tiny());
  // Class 1 may only fill way 0 (mask 0b0001): its lines evict each other.
  c.access(0, 0b0001, 1);
  c.access(4, 0b0001, 1);  // same set, must evict the way-0 line
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(4));
}

TEST(CacheLevel, HitsAllowedOutsideMask) {
  CacheLevel c(tiny());
  // Install with a full mask as class 0.
  c.access(0, c.full_mask(), 0);
  // Class 1 with a mask excluding every way still *hits* the line.
  const auto r = c.access(0, 0b1000, 1);
  EXPECT_TRUE(r.hit);
  // hit_outside_mask flags the residual-benefit path iff the way differs.
  // Line 0 was installed in some way; mask 0b1000 covers only way 3.
  // (The install picked way 0 as first invalid.)
  EXPECT_TRUE(r.hit_outside_mask);
}

TEST(CacheLevel, EmptyUsableMaskBypasses) {
  CacheLevel c(tiny());
  const auto r = c.access(0, 0, 0);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.evicted);
  EXPECT_FALSE(c.contains(0));
}

TEST(CacheLevel, OccupancyTracksOwnership) {
  CacheLevel c(tiny());
  c.access(0, c.full_mask(), 2);
  c.access(1, c.full_mask(), 2);
  c.access(2, c.full_mask(), 3);
  EXPECT_EQ(c.occupancy(2), 2u);
  EXPECT_EQ(c.occupancy(3), 1u);
  EXPECT_EQ(c.occupancy(7), 0u);
}

TEST(CacheLevel, EvictionTransfersOccupancy) {
  CacheLevel c(tiny());
  // Fill set 0 entirely with class 0.
  for (std::uint64_t i = 0; i < 4; ++i) c.access(i * 4, c.full_mask(), 0);
  EXPECT_EQ(c.occupancy(0), 4u);
  // Class 1 evicts one.
  const auto r = c.access(100 * 4, c.full_mask(), 1);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_class, 0);
  EXPECT_EQ(c.occupancy(0), 3u);
  EXPECT_EQ(c.occupancy(1), 1u);
}

TEST(CacheLevel, FlushClassOnlyRemovesThatClass) {
  CacheLevel c(tiny());
  c.access(0, c.full_mask(), 0);
  c.access(1, c.full_mask(), 1);
  c.flush_class(0);
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
  EXPECT_EQ(c.occupancy(0), 0u);
  c.flush();
  EXPECT_FALSE(c.contains(1));
}

TEST(CacheLevel, FullMaskWidth) {
  CacheLevel c(tiny());
  EXPECT_EQ(c.full_mask(), 0b1111u);
}

// Property: a mask of k contiguous ways bounds a class's footprint per set.
class WayMaskSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WayMaskSweep, MaskBoundsOccupancyPerSet) {
  const std::uint32_t ways = GetParam();
  CacheLevel c(tiny());
  const WayMask mask = (WayMask{1} << ways) - 1;
  // Hammer one set with many distinct lines.
  for (std::uint64_t i = 0; i < 64; ++i) c.access(i * 4, mask, 0);
  EXPECT_LE(c.occupancy(0), ways);
  EXPECT_EQ(c.occupancy(0), ways);  // exactly filled
}

INSTANTIATE_TEST_SUITE_P(Widths, WayMaskSweep, ::testing::Values(1, 2, 3, 4));

// --- SoA vs legacy layout identity (LevelConfig::soa, DESIGN.md §10) ---

LevelConfig with_layout(bool soa) {
  LevelConfig cfg = tiny();
  cfg.soa = soa;
  return cfg;
}

TEST(CacheLevelSoA, MatchesLegacyOnAdversarialReplay) {
  // Replay one pseudo-random trace through both layouts and require the
  // exact same hit/evict/owner decision on every access.  The trace mixes
  // classes, narrow/overlapping/empty fill masks, flushes and re-touches.
  CacheLevel soa(with_layout(true));
  CacheLevel aos(with_layout(false));
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const WayMask masks[] = {0b1111, 0b0011, 0b1100, 0b0001, 0b1000, 0};
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t line = next() % 64;  // 16 lines per set: heavy churn
    const WayMask mask = masks[next() % 6];
    const auto cls = static_cast<ClassId>(next() % 5);
    const AccessResult a = soa.access(line, mask, cls);
    const AccessResult b = aos.access(line, mask, cls);
    ASSERT_EQ(a.hit, b.hit) << "access " << i;
    ASSERT_EQ(a.evicted, b.evicted) << "access " << i;
    ASSERT_EQ(a.evicted_class, b.evicted_class) << "access " << i;
    ASSERT_EQ(a.hit_outside_mask, b.hit_outside_mask) << "access " << i;
    if (i % 4096 == 0) {
      const auto flush_cls = static_cast<ClassId>(next() % 5);
      soa.flush_class(flush_cls);
      aos.flush_class(flush_cls);
    }
  }
  for (ClassId cls = 0; cls < 5; ++cls)
    EXPECT_EQ(soa.occupancy(cls), aos.occupancy(cls)) << "class " << cls;
  for (std::uint64_t line = 0; line < 64; ++line)
    EXPECT_EQ(soa.contains(line), aos.contains(line)) << "line " << line;
}

TEST(CacheLevelSoA, LegacyLayoutStillAvailable) {
  CacheLevel c(with_layout(false));
  EXPECT_FALSE(c.access(100, c.full_mask(), 0).hit);
  EXPECT_TRUE(c.access(100, c.full_mask(), 0).hit);
  EXPECT_EQ(c.occupancy(0), 1u);
}

// --- occupancy bookkeeping across class-slot growth (ISSUE 4 satellite) ---

class OccupancyInvariant : public ::testing::TestWithParam<bool> {};

TEST_P(OccupancyInvariant, EvictionOfClassInstalledBeforeLaterResize) {
  // Class 2's install sizes the occupancy table to 3 slots; class 9's
  // install later grows it to 10.  Evicting class 2's line afterwards must
  // decrement the *original* slot — the permissive pre-PR4 guard
  // (`owner < occupancy_.size() && occupancy_[owner] > 0`) could silently
  // skip the decrement and leak phantom occupancy; the invariant is now
  // enforced rather than papered over.
  CacheLevel c(with_layout(GetParam()));
  // Fill set 0 (4 ways) with class 2, growing the table to 3 slots.
  for (std::uint64_t i = 0; i < 4; ++i) c.access(i * 4, c.full_mask(), 2);
  EXPECT_EQ(c.occupancy(2), 4u);
  // Class 9 installs into the same set: the table grows, then class 2's
  // LRU line is evicted.
  const auto r = c.access(100 * 4, c.full_mask(), 9);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_class, 2);
  EXPECT_EQ(c.occupancy(2), 3u);
  EXPECT_EQ(c.occupancy(9), 1u);
  // Drain the rest of class 2 out of the set; the books must hit zero
  // exactly (underflow now trips the STAC_ENSURE instead of saturating).
  for (std::uint64_t i = 101; i < 104; ++i) c.access(i * 4, c.full_mask(), 9);
  EXPECT_EQ(c.occupancy(2), 0u);
  EXPECT_EQ(c.occupancy(9), 4u);
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, OccupancyInvariant,
                         ::testing::Values(true, false));

}  // namespace
}  // namespace stac::cachesim

// ISA identity oracles for the simd_probe kernels: every tier the build
// can target (scalar always, SSE2/AVX2 when compiled in) must produce the
// same masks and the same victim on the same lanes.  Inputs respect the
// kernel contracts the SoA layout guarantees — at most one valid match per
// set, pairwise-distinct ages, non-empty all-valid permitted masks — and
// sweep every dispatch width the cache presets use (4/8/11/12/16/20) so
// both the vector blocks and the scalar tails are exercised.  The last
// test replays a full trace through a CacheLevel built at each width as an
// end-to-end guard that the kernel swap changed nothing observable.
#include "cachesim/simd_probe.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "cachesim/cache_level.hpp"
#include "common/rng.hpp"

namespace stac::cachesim {
namespace {

constexpr std::uint64_t kValidBit = std::uint64_t{1} << 63;
constexpr std::size_t kWidths[] = {4, 8, 11, 12, 16, 20};

/// One synthetic key lane: a random valid/invalid pattern with at most one
/// way holding the probe key (the SoA invariant: installs happen on miss).
std::vector<std::uint64_t> make_lane(Rng& rng, std::size_t ways,
                                     std::uint64_t probe_tag,
                                     bool plant_match) {
  std::vector<std::uint64_t> keys(ways);
  for (std::size_t w = 0; w < ways; ++w) {
    // Distinct tags != probe_tag; ~1/4 of ways invalid.
    const std::uint64_t tag = probe_tag + 1 + w;
    keys[w] = rng.bernoulli(0.25) ? tag : (tag | kValidBit);
  }
  if (plant_match)
    keys[rng.uniform_index(ways)] = probe_tag | kValidBit;
  return keys;
}

TEST(SimdProbe, AllCompiledTiersMatchScalarOnProbe) {
  Rng rng(2024);
  for (const std::size_t ways : kWidths) {
    for (int trial = 0; trial < 200; ++trial) {
      const std::uint64_t probe_tag = rng.next_u64() >> 6;  // tag fits 58 bits
      const std::uint64_t probe = probe_tag | kValidBit;
      const auto keys = make_lane(rng, ways, probe_tag, trial % 2 == 0);

      const simd::ProbeMasks ref =
          simd::probe_sweep_scalar(keys.data(), ways, probe);
      // At most one match, and match implies valid.
      ASSERT_LE(std::popcount(ref.match), 1);
      ASSERT_EQ(ref.match & ~ref.valid, 0u);
#if defined(__SSE2__)
      const simd::ProbeMasks sse =
          simd::probe_sweep_sse2(keys.data(), ways, probe);
      ASSERT_EQ(sse.match, ref.match) << "sse2 match, ways=" << ways;
      ASSERT_EQ(sse.valid, ref.valid) << "sse2 valid, ways=" << ways;
#endif
#if defined(__AVX2__)
      const simd::ProbeMasks avx =
          simd::probe_sweep_avx2(keys.data(), ways, probe);
      ASSERT_EQ(avx.match, ref.match) << "avx2 match, ways=" << ways;
      ASSERT_EQ(avx.valid, ref.valid) << "avx2 valid, ways=" << ways;
#endif
      const simd::ProbeMasks best = simd::probe_sweep(keys.data(), ways, probe);
      ASSERT_EQ(best.match, ref.match);
      ASSERT_EQ(best.valid, ref.valid);
    }
  }
}

TEST(SimdProbe, AllCompiledTiersMatchScalarOnVictimScan) {
  Rng rng(7177);
  for (const std::size_t ways : kWidths) {
    // Distinct ages in random order (the set-clock invariant).
    std::vector<std::uint32_t> ages(ways);
    for (int trial = 0; trial < 200; ++trial) {
      std::iota(ages.begin(), ages.end(),
                static_cast<std::uint32_t>(rng.uniform_index(1u << 20)));
      rng.shuffle(ages);
      // Non-empty permitted mask within the way range.
      const std::uint32_t full =
          ways >= 32 ? ~0u : ((1u << ways) - 1u);
      std::uint32_t usable = static_cast<std::uint32_t>(rng.next_u64()) & full;
      if (usable == 0) usable = 1u << rng.uniform_index(ways);

      const std::size_t ref =
          simd::victim_scan_scalar(ages.data(), ways, usable);
      ASSERT_LT(ref, ways);
      ASSERT_NE((usable >> ref) & 1u, 0u);
#if defined(__AVX2__)
      ASSERT_EQ(simd::victim_scan_avx2(ages.data(), ways, usable), ref)
          << "avx2 victim, ways=" << ways << " usable=" << usable;
#endif
      ASSERT_EQ(simd::victim_scan(ages.data(), ways, usable), ref);
    }
  }
}

TEST(SimdProbe, IsaNameMatchesCompileTimeDispatch) {
  const std::string isa = simd::isa_name();
#if defined(__AVX2__)
  EXPECT_EQ(isa, "avx2");
#elif defined(__SSE2__)
  EXPECT_EQ(isa, "sse2");
#else
  EXPECT_EQ(isa, "scalar");
#endif
}

TEST(SimdProbe, CacheLevelTraceIdenticalAcrossLayouts) {
  // End-to-end: SoA (SIMD kernels) vs legacy AoS replay of one adversarial
  // trace — aliasing tags, rotating fill masks, multiple classes — at every
  // dispatch width.  Catches any divergence the unit oracles might miss.
  for (const std::size_t ways : kWidths) {
    constexpr std::size_t kSets = 16;
    LevelConfig cfg;
    cfg.size_bytes = kSets * ways * 64;  // line_bytes = 64 => 16 sets
    cfg.ways = ways;
    cfg.soa = true;
    ASSERT_TRUE(cfg.valid());
    LevelConfig legacy_cfg = cfg;
    legacy_cfg.soa = false;
    CacheLevel soa(cfg);
    CacheLevel aos(legacy_cfg);

    Rng rng(99 + ways);
    const WayMask full = soa.full_mask();
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t line = rng.uniform_index(kSets * ways * 3);
      WayMask mask = static_cast<WayMask>(rng.next_u64()) & full;
      if (i % 7 == 0) mask = full;
      const auto cls = static_cast<ClassId>(rng.uniform_index(3));
      const AccessResult a = soa.access(line, mask, cls);
      const AccessResult b = aos.access(line, mask, cls);
      ASSERT_EQ(a.hit, b.hit) << "ways=" << ways << " i=" << i;
      ASSERT_EQ(a.evicted, b.evicted) << "ways=" << ways << " i=" << i;
      ASSERT_EQ(a.evicted_class, b.evicted_class)
          << "ways=" << ways << " i=" << i;
      ASSERT_EQ(a.hit_outside_mask, b.hit_outside_mask)
          << "ways=" << ways << " i=" << i;
    }
    for (ClassId c = 0; c < 3; ++c)
      EXPECT_EQ(soa.occupancy(c), aos.occupancy(c)) << "ways=" << ways;
  }
}

}  // namespace
}  // namespace stac::cachesim

// Preset-validity regression sweep (PR 10 satellite).
//
// Every shipped preset must construct, pass valid(), and decompose every
// level into a power-of-two set count — the SoA probe kernels index sets
// with a mask, so a non-power-of-two count would silently alias lines.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cachesim/cache_config.hpp"

namespace stac::cachesim {
namespace {

bool power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint64_t sets(const LevelConfig& l) {
  return l.size_bytes / (static_cast<std::uint64_t>(l.ways) * l.line_bytes);
}

TEST(ProcessorPresets, EveryPresetIsValidWithPowerOfTwoSets) {
  for (const HierarchyConfig& cfg : presets::all()) {
    SCOPED_TRACE(cfg.name);
    EXPECT_TRUE(cfg.valid());
    for (const LevelConfig* l : {&cfg.l1d, &cfg.l1i, &cfg.l2, &cfg.llc}) {
      EXPECT_EQ(l->size_bytes %
                    (static_cast<std::uint64_t>(l->ways) * l->line_bytes),
                0u);
      EXPECT_TRUE(power_of_two(sets(*l)))
          << l->size_bytes << " B / " << l->ways << " ways";
    }
    if (cfg.timing.dram_cache.has_value()) {
      EXPECT_TRUE(cfg.timing.dram_cache->geometry.valid());
      EXPECT_TRUE(power_of_two(cfg.timing.dram_cache->geometry.sets()));
      EXPECT_EQ(cfg.timing.dram_cache->geometry.line_bytes,
                cfg.l1d.line_bytes);
    }
    EXPECT_GT(cfg.cores, 0u);
    EXPECT_GT(cfg.memory_latency_cycles, 0u);
  }
}

TEST(ProcessorPresets, NamesAreUnique) {
  std::set<std::string> names;
  for (const HierarchyConfig& cfg : presets::all())
    EXPECT_TRUE(names.insert(cfg.name).second) << cfg.name;
  EXPECT_EQ(names.size(), presets::all().size());
}

// The 59 MB socket ships a rounded 16-way x 4 MB/way geometry; its comment
// promises exactly that.  Pin it so geometry and doc cannot drift apart.
TEST(ProcessorPresets, Platinum59mbShipsDocumentedRoundedLayout) {
  const HierarchyConfig cfg = presets::xeon_platinum_8275_59mb();
  EXPECT_EQ(cfg.llc.size_bytes, 64u * 1024 * 1024);
  EXPECT_EQ(cfg.llc.ways, 16u);
  EXPECT_EQ(cfg.llc_way_bytes(), 4u * 1024 * 1024);
}

TEST(ProcessorPresets, PaperPartsKeepLegacyFlatTiming) {
  // The five Fig. 7b parts must stay bit-identical to the pre-timing
  // simulator: flat-equivalent specs, no warnings.
  const auto& all = presets::all();
  ASSERT_GE(all.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    SCOPED_TRACE(all[i].name);
    EXPECT_TRUE(all[i].timing_flat());
    EXPECT_TRUE(all[i].timing_warnings().empty());
  }
}

TEST(ProcessorPresets, TimedPresetsShipQueuedChannelsAndOneStackedTier) {
  std::size_t queued = 0;
  std::size_t stacked = 0;
  for (const HierarchyConfig& cfg : presets::all()) {
    SCOPED_TRACE(cfg.name);
    if (cfg.timing.dram.queue_enabled()) ++queued;
    if (cfg.timing.dram_cache.has_value()) ++stacked;
    EXPECT_TRUE(cfg.timing_warnings().empty());
  }
  EXPECT_GE(queued, 3u);   // >= 3 new bandwidth-queued presets
  EXPECT_EQ(stacked, 1u);  // exactly one DRAM-cache part (Xeon Max class)
}

TEST(ProcessorPresets, TimedPresetsAreNotFlatEquivalent) {
  EXPECT_FALSE(presets::epyc_milan_32mb().timing_flat());
  EXPECT_FALSE(presets::sapphire_rapids_48mb().timing_flat());
  EXPECT_FALSE(presets::emerald_rapids_60mb().timing_flat());
  EXPECT_FALSE(presets::xeon_max_hbm_64mb().timing_flat());
  EXPECT_TRUE(presets::xeon_max_hbm_64mb().timing.dram_cache.has_value());
}

TEST(ProcessorPresets, CrossHardwareSweepSpansDistinctLlcSizes) {
  // The Fig. 7a rerun needs distinct hardware points, not renames.
  std::set<std::size_t> llc_sizes;
  for (const HierarchyConfig& cfg : presets::all())
    llc_sizes.insert(cfg.llc.size_bytes);
  EXPECT_GE(llc_sizes.size(), 8u);
}

}  // namespace
}  // namespace stac::cachesim

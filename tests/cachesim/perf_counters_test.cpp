#include "cachesim/perf_counters.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace stac::cachesim {
namespace {

TEST(PerfCounters, TwentyNineCountersWithUniqueNames) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kCounterCount; ++i)
    names.insert(counter_name(static_cast<Counter>(i)));
  EXPECT_EQ(names.size(), 29u);
}

TEST(PerfCounters, GroupedOrderingIsContiguous) {
  // The canonical order groups counters by type — the spatial locality MGS
  // exploits (Fig. 7c).  Groups must not interleave.
  std::set<CounterGroup> seen;
  CounterGroup prev = counter_group(static_cast<Counter>(0));
  seen.insert(prev);
  for (std::size_t i = 1; i < kCounterCount; ++i) {
    const CounterGroup g = counter_group(static_cast<Counter>(i));
    if (g != prev) {
      EXPECT_EQ(seen.count(g), 0u)
          << "group " << counter_group_name(g) << " interleaves";
      seen.insert(g);
      prev = g;
    }
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(PerfCounters, SnapshotBumpAndGet) {
  CounterSnapshot s;
  s.bump(Counter::kLlcLoads, 5);
  s.bump(Counter::kLlcLoads);
  EXPECT_EQ(s.get(Counter::kLlcLoads), 6u);
}

TEST(PerfCounters, DeltaSubtractsMonotonicCopiesGauges) {
  CounterSnapshot before, after;
  before.set(Counter::kLlcLoads, 10);
  after.set(Counter::kLlcLoads, 25);
  before.set(Counter::kLlcOccupancyLines, 500);
  after.set(Counter::kLlcOccupancyLines, 300);  // gauge may fall
  const CounterSnapshot d = after.delta_since(before);
  EXPECT_EQ(d.get(Counter::kLlcLoads), 15u);
  EXPECT_EQ(d.get(Counter::kLlcOccupancyLines), 300u);
}

TEST(PerfCounters, DeltaRejectsBackwardsMonotonic) {
  CounterSnapshot before, after;
  before.set(Counter::kLlcLoads, 10);
  after.set(Counter::kLlcLoads, 5);
  EXPECT_THROW(after.delta_since(before), ContractViolation);
}

TEST(PerfCounters, DerivedRatios) {
  CounterSnapshot s;
  s.set(Counter::kL1dLoads, 80);
  s.set(Counter::kL1dStores, 20);
  s.set(Counter::kL1dLoadMisses, 8);
  s.set(Counter::kL1dStoreMisses, 2);
  EXPECT_DOUBLE_EQ(s.l1d_miss_ratio(), 0.1);

  s.set(Counter::kLlcLoads, 40);
  s.set(Counter::kLlcStores, 10);
  s.set(Counter::kLlcLoadMisses, 20);
  s.set(Counter::kLlcStoreMisses, 5);
  EXPECT_DOUBLE_EQ(s.llc_miss_ratio(), 0.5);

  s.set(Counter::kInstructions, 1000);
  EXPECT_DOUBLE_EQ(s.llc_mpki(), 25.0);
}

TEST(PerfCounters, RatiosSafeOnZeroDenominator) {
  CounterSnapshot s;
  EXPECT_DOUBLE_EQ(s.l1d_miss_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(s.llc_miss_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(s.llc_mpki(), 0.0);
}

TEST(PerfCounters, GaugeFlags) {
  EXPECT_TRUE(counter_is_gauge(Counter::kLlcOccupancyLines));
  EXPECT_TRUE(counter_is_gauge(Counter::kIpcX1000));
  EXPECT_FALSE(counter_is_gauge(Counter::kLlcLoads));
}

}  // namespace
}  // namespace stac::cachesim

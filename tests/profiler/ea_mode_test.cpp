// EA-mode knob (DESIGN.md §16): kMissRatio must reproduce the historical
// labels bit-for-bit, kModeledTime must produce sane time-derived labels
// from the timing-accurate hierarchy.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "cachesim/perf_counters.hpp"
#include "obs/metrics.hpp"
#include "profiler/profiler.hpp"

namespace stac::profiler {
namespace {

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 400;
  cfg.warmup_completions = 50;
  cfg.max_windows = 2;
  cfg.accesses_per_sample = 1500;
  return cfg;
}

RuntimeCondition sample_condition() {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kBfs;
  c.util_primary = 0.7;
  c.util_collocated = 0.6;
  c.timeout_primary = 1.0;
  c.timeout_collocated = 2.0;
  c.seed = 9;
  return c;
}

TEST(EaMode, DefaultIsMissRatio) {
  EXPECT_EQ(ProfilerConfig{}.ea_mode, EaMode::kMissRatio);
}

// The knob's backwards-compatibility contract: an explicitly-set kMissRatio
// profiler is indistinguishable from a default one — same EA, same images,
// same ground-truth RT, bitwise.
TEST(EaMode, MissRatioIsBitIdenticalToDefault) {
  ProfilerConfig explicit_cfg = fast_config();
  explicit_cfg.ea_mode = EaMode::kMissRatio;
  const Profiler defaulted(fast_config());
  const Profiler explicited(explicit_cfg);
  const auto a = defaulted.profile_condition(sample_condition());
  const auto b = explicited.profile_condition(sample_condition());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ea, b[i].ea);
    EXPECT_EQ(a[i].ea_boost, b[i].ea_boost);
    EXPECT_EQ(a[i].mean_rt, b[i].mean_rt);
    EXPECT_EQ(a[i].p95_rt, b[i].p95_rt);
    ASSERT_EQ(a[i].image.rows(), b[i].image.rows());
    ASSERT_EQ(a[i].image.cols(), b[i].image.cols());
    for (std::size_t r = 0; r < a[i].image.rows(); ++r)
      for (std::size_t c = 0; c < a[i].image.cols(); ++c)
        ASSERT_EQ(a[i].image(r, c), b[i].image(r, c));
  }
}

TEST(EaMode, ModeledTimeProducesFiniteLabels) {
  ProfilerConfig cfg = fast_config();
  cfg.ea_mode = EaMode::kModeledTime;
  const Profiler profiler(cfg);
  const auto profiles = profiler.profile_condition(sample_condition());
  ASSERT_GE(profiles.size(), 1u);
  for (const auto& p : profiles) {
    EXPECT_TRUE(std::isfinite(p.ea));
    EXPECT_GT(p.ea, 0.0);
    EXPECT_LE(p.ea, 1.0);
    EXPECT_TRUE(std::isfinite(p.ea_boost));
    EXPECT_GT(p.ea_boost, 0.0);
    EXPECT_LE(p.ea_boost, 1.0);
    // Image generation is mode-independent: same shape either way.
    EXPECT_EQ(p.image.rows(), 2 * cachesim::kCounterCount);
    EXPECT_EQ(p.image.cols(), cfg.image_cols);
    EXPECT_GT(p.mean_rt, 0.0);
  }
}

TEST(EaMode, ModeledTimeImagesMatchMissRatioImages) {
  // The EA mode only changes the label source — the counter images fed to
  // the models must be bit-identical across modes.
  ProfilerConfig time_cfg = fast_config();
  time_cfg.ea_mode = EaMode::kModeledTime;
  const Profiler by_ratio(fast_config());
  const Profiler by_time(time_cfg);
  const auto a = by_ratio.profile_condition(sample_condition());
  const auto b = by_time.profile_condition(sample_condition());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t r = 0; r < a[i].image.rows(); ++r)
      for (std::size_t c = 0; c < a[i].image.cols(); ++c)
        ASSERT_EQ(a[i].image(r, c), b[i].image(r, c));
    // Ground truth comes from the same testbed runs in both modes.
    EXPECT_EQ(a[i].mean_rt, b[i].mean_rt);
    EXPECT_EQ(a[i].mean_rt_default, b[i].mean_rt_default);
  }
}

TEST(EaMode, ModeledCyclesPerAccessPositiveOnRealTrace) {
  ProfilerConfig cfg = fast_config();
  const Profiler profiler(cfg);
  const RuntimeCondition cond = sample_condition();
  std::vector<std::unique_ptr<wl::WorkloadModel>> owned;
  queueing::TestbedConfig tb = profiler.make_testbed_config(
      cond, cond.timeout_primary, cond.timeout_collocated, owned);
  // Tracing is opt-in: without a sample interval the trace stays empty and
  // modeled_cycles_per_access correctly reports 0.
  queueing::Testbed untraced(tb);
  EXPECT_EQ(profiler.modeled_cycles_per_access(untraced.run(), cond), 0.0);
  tb.sample_interval =
      profiler.pair_scales(cond.primary, cond.collocated).scaled_base_primary;
  queueing::Testbed testbed(tb);
  const queueing::TestbedResult result = testbed.run();
  const double cpa = profiler.modeled_cycles_per_access(result, cond);
  EXPECT_TRUE(std::isfinite(cpa));
  EXPECT_GT(cpa, 0.0);
  // Cycles per access are bounded below by the L1 latency and above by the
  // scaled hierarchy's worst-case miss chain.
  EXPECT_LT(cpa, 1000.0);
}

}  // namespace
}  // namespace stac::profiler

#include "profiler/stratified_sampler.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::profiler {
namespace {

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 300;
  cfg.warmup_completions = 40;
  cfg.max_windows = 1;
  cfg.accesses_per_sample = 800;
  return cfg;
}

TEST(StratifiedSampler, CollectsRequestedBudget) {
  Profiler profiler(fast_config());
  SamplerConfig sc;
  sc.seed = 3;
  StratifiedSampler sampler(profiler, sc);
  const auto profiles =
      sampler.collect(wl::Benchmark::kKnn, wl::Benchmark::kBfs, 10);
  // max_windows = 1: up to one profile per condition; testbed runs that end
  // before enough trace samples may drop a few.
  EXPECT_GE(profiles.size(), 7u);
  EXPECT_LE(profiles.size(), 10u);
  for (const auto& p : profiles) {
    EXPECT_EQ(p.condition.primary, wl::Benchmark::kKnn);
    EXPECT_GT(p.ea, 0.0);
  }
}

TEST(StratifiedSampler, UniformCollectsRequestedBudget) {
  Profiler profiler(fast_config());
  StratifiedSampler sampler(profiler, SamplerConfig{.seed = 4});
  const auto profiles =
      sampler.collect_uniform(wl::Benchmark::kKnn, wl::Benchmark::kBfs, 8);
  EXPECT_GE(profiles.size(), 5u);
  EXPECT_LE(profiles.size(), 8u);
}

TEST(StratifiedSampler, RefinementsConcentrateNearSeeds) {
  Profiler profiler(fast_config());
  SamplerConfig sc;
  sc.seed = 5;
  sc.seed_fraction = 0.5;
  StratifiedSampler sampler(profiler, sc);
  const auto profiles =
      sampler.collect(wl::Benchmark::kKmeans, wl::Benchmark::kSpstream, 12);
  ASSERT_GE(profiles.size(), 8u);
  // The refinement phase exists: conditions beyond the seed count must be
  // within perturbation range of some seed condition.
  const std::size_t n_seed = 6;
  bool any_near = false;
  for (std::size_t i = n_seed; i < profiles.size(); ++i) {
    for (std::size_t j = 0; j < n_seed && j < profiles.size(); ++j) {
      const double du = std::abs(profiles[i].condition.util_primary -
                                 profiles[j].condition.util_primary);
      if (du < 0.25) any_near = true;
    }
  }
  EXPECT_TRUE(any_near);
}

TEST(StratifiedSampler, RejectsTinyBudget) {
  Profiler profiler(fast_config());
  StratifiedSampler sampler(profiler, SamplerConfig{});
  EXPECT_THROW(
      sampler.collect(wl::Benchmark::kKnn, wl::Benchmark::kBfs, 2),
      ContractViolation);
}

TEST(SamplerConfig, Validation) {
  Profiler profiler(fast_config());
  SamplerConfig bad;
  bad.seed_fraction = 0.0;
  EXPECT_THROW(StratifiedSampler(profiler, bad), ContractViolation);
}

}  // namespace
}  // namespace stac::profiler

#include "profiler/runtime_condition.hpp"

#include <gtest/gtest.h>

namespace stac::profiler {
namespace {

TEST(RuntimeCondition, SwappedExchangesRoles) {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kRedis;
  c.collocated = wl::Benchmark::kSocial;
  c.util_primary = 0.9;
  c.util_collocated = 0.4;
  c.timeout_primary = 1.0;
  c.timeout_collocated = 3.0;
  const RuntimeCondition s = c.swapped();
  EXPECT_EQ(s.primary, wl::Benchmark::kSocial);
  EXPECT_EQ(s.collocated, wl::Benchmark::kRedis);
  EXPECT_DOUBLE_EQ(s.util_primary, 0.4);
  EXPECT_DOUBLE_EQ(s.timeout_primary, 3.0);
  EXPECT_DOUBLE_EQ(s.timeout_collocated, 1.0);
  EXPECT_EQ(s.seed, c.seed);
  // Double swap restores.
  const RuntimeCondition ss = s.swapped();
  EXPECT_DOUBLE_EQ(ss.util_primary, 0.9);
}

TEST(RuntimeCondition, ToStringMentionsPairing) {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kJacobi;
  c.collocated = wl::Benchmark::kBfs;
  EXPECT_NE(c.to_string().find("jacobi(bfs)"), std::string::npos);
}

TEST(RandomCondition, WithinTableTwoRanges) {
  const ConditionRanges ranges;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const RuntimeCondition c = random_condition(
        wl::Benchmark::kKmeans, wl::Benchmark::kRedis, ranges, rng);
    EXPECT_GE(c.util_primary, 0.25);
    EXPECT_LE(c.util_primary, 0.95);
    EXPECT_GE(c.timeout_primary, 0.0);
    EXPECT_LE(c.timeout_primary, 6.0);
    EXPECT_GE(c.util_collocated, 0.25);
    EXPECT_LE(c.timeout_collocated, 6.0);
    EXPECT_EQ(c.primary, wl::Benchmark::kKmeans);
  }
}

TEST(RandomCondition, SeedsDiffer) {
  const ConditionRanges ranges;
  Rng rng(2);
  const auto a = random_condition(wl::Benchmark::kKnn, wl::Benchmark::kBfs,
                                  ranges, rng);
  const auto b = random_condition(wl::Benchmark::kKnn, wl::Benchmark::kBfs,
                                  ranges, rng);
  EXPECT_NE(a.seed, b.seed);
}

TEST(RandomCondition, HiddenFactorsWithinRanges) {
  const ConditionRanges ranges;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const RuntimeCondition c = random_condition(
        wl::Benchmark::kKmeans, wl::Benchmark::kRedis, ranges, rng);
    EXPECT_GE(c.mix_primary, ranges.mix_lo);
    EXPECT_LE(c.mix_primary, ranges.mix_hi);
    EXPECT_GE(c.mix_collocated, ranges.mix_lo);
    EXPECT_LE(c.mix_collocated, ranges.mix_hi);
    EXPECT_GE(c.churn, ranges.churn_lo);
    EXPECT_LE(c.churn, ranges.churn_hi);
  }
}

TEST(RuntimeCondition, SwappedExchangesMixes) {
  RuntimeCondition c;
  c.mix_primary = 1.3;
  c.mix_collocated = 0.8;
  c.churn = 0.4;
  const RuntimeCondition s = c.swapped();
  EXPECT_DOUBLE_EQ(s.mix_primary, 0.8);
  EXPECT_DOUBLE_EQ(s.mix_collocated, 1.3);
  EXPECT_DOUBLE_EQ(s.churn, 0.4);  // node-level, not per-service
}

TEST(PerturbCondition, StaysClampedAndNearBase) {
  const ConditionRanges ranges;
  Rng rng(3);
  RuntimeCondition base;
  base.util_primary = 0.9;
  base.timeout_primary = 0.1;
  double drift = 0.0;
  for (int i = 0; i < 300; ++i) {
    const RuntimeCondition p = perturb_condition(base, ranges, rng);
    EXPECT_GE(p.util_primary, 0.25);
    EXPECT_LE(p.util_primary, 0.95);
    EXPECT_GE(p.timeout_primary, 0.0);
    EXPECT_LE(p.timeout_primary, 6.0);
    EXPECT_EQ(p.primary, base.primary);
    drift += std::abs(p.util_primary - base.util_primary);
  }
  // Perturbations are local refinements, not fresh uniform draws.
  EXPECT_LT(drift / 300.0, 0.1);
}

}  // namespace
}  // namespace stac::profiler

#include "profiler/profile_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injection.hpp"

namespace stac::profiler {
namespace {

Profile sample_profile(std::uint64_t seed) {
  Profile p;
  p.condition.primary = wl::Benchmark::kSocial;
  p.condition.collocated = wl::Benchmark::kRedis;
  p.condition.util_primary = 0.87;
  p.condition.util_collocated = 0.31;
  p.condition.timeout_primary = 1.25;
  p.condition.timeout_collocated = 4.5;
  p.condition.mix_primary = 1.17;
  p.condition.mix_collocated = 0.93;
  p.condition.churn = 0.42;
  p.condition.seed = seed;
  p.ea = 0.381;
  p.ea_boost = 0.442;
  p.mean_rt = 2.75;
  p.p95_rt = 6.125;
  p.mean_rt_default = 3.5;
  p.p95_rt_default = 8.25;
  p.mean_service = 0.9;
  p.scaled_base_primary = 7.5;
  p.allocation_ratio = 3.0;
  p.statics = {0.87, 1.25, 0.31, 4.5, 1.0, 2.0, 3.0};
  p.dynamics = {0.12, 0.5, 0.03, 0.0};
  p.image = Matrix(3, 4);
  Rng rng(seed);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) p.image(r, c) = rng.uniform() * 1e6;
  return p;
}

const char* kPath = "/tmp/stac_profile_io_test.txt";

TEST(ProfileIo, RoundTripIsBitExact) {
  std::vector<Profile> profiles{sample_profile(1), sample_profile(2),
                                sample_profile(3)};
  save_profiles(kPath, profiles);
  const auto loaded = load_profiles(kPath);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const Profile& a = profiles[i];
    const Profile& b = loaded[i];
    EXPECT_EQ(a.condition.primary, b.condition.primary);
    EXPECT_EQ(a.condition.collocated, b.condition.collocated);
    EXPECT_DOUBLE_EQ(a.condition.util_primary, b.condition.util_primary);
    EXPECT_DOUBLE_EQ(a.condition.timeout_collocated,
                     b.condition.timeout_collocated);
    EXPECT_DOUBLE_EQ(a.condition.mix_primary, b.condition.mix_primary);
    EXPECT_DOUBLE_EQ(a.condition.churn, b.condition.churn);
    EXPECT_EQ(a.condition.seed, b.condition.seed);
    EXPECT_DOUBLE_EQ(a.ea, b.ea);
    EXPECT_DOUBLE_EQ(a.ea_boost, b.ea_boost);
    EXPECT_DOUBLE_EQ(a.mean_rt, b.mean_rt);
    EXPECT_DOUBLE_EQ(a.scaled_base_primary, b.scaled_base_primary);
    ASSERT_EQ(a.statics.size(), b.statics.size());
    for (std::size_t j = 0; j < a.statics.size(); ++j)
      EXPECT_DOUBLE_EQ(a.statics[j], b.statics[j]);
    ASSERT_EQ(a.dynamics, b.dynamics);
    ASSERT_EQ(a.image.rows(), b.image.rows());
    ASSERT_EQ(a.image.cols(), b.image.cols());
    for (std::size_t r = 0; r < a.image.rows(); ++r)
      for (std::size_t col = 0; col < a.image.cols(); ++col)
        EXPECT_DOUBLE_EQ(a.image(r, col), b.image(r, col));
  }
  std::remove(kPath);
}

TEST(ProfileIo, EmptySetRoundTrips) {
  save_profiles(kPath, {});
  EXPECT_TRUE(load_profiles(kPath).empty());
  std::remove(kPath);
}

TEST(ProfileIo, RejectsMissingFile) {
  EXPECT_THROW((void)load_profiles("/tmp/stac_definitely_missing_file.txt"),
               ContractViolation);
}

TEST(ProfileIo, RejectsWrongMagic) {
  {
    std::ofstream out(kPath);
    out << "not-a-profile v1 0\n";
  }
  EXPECT_THROW((void)load_profiles(kPath), ContractViolation);
  std::remove(kPath);
}

TEST(ProfileIo, RejectsWrongVersion) {
  {
    std::ofstream out(kPath);
    out << "stac-profiles v999 0\n";
  }
  EXPECT_THROW((void)load_profiles(kPath), ContractViolation);
  std::remove(kPath);
}

TEST(ProfileIo, SavedFilesCarryPerRecordChecksums) {
  save_profiles(kPath, {sample_profile(1), sample_profile(2)});
  std::ifstream in(kPath);
  std::string line;
  std::size_t checksums = 0;
  while (std::getline(in, line))
    if (line.rfind("checksum ", 0) == 0) ++checksums;
  EXPECT_EQ(checksums, 2u);
  std::remove(kPath);
}

TEST(ProfileIo, ResilientLoadQuarantinesCorruptRecord) {
  save_profiles(kPath, {sample_profile(1), sample_profile(2),
                        sample_profile(3)});
  // Damage the middle record's payload: checksum mismatch, structure kept.
  // v2 layout: header line, then 5 lines per record (meta, statics,
  // dynamics, image, checksum) — line 6 is record 1's meta line.
  std::vector<std::string> lines;
  {
    std::ifstream in(kPath);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 1u + 3 * 5);
  lines[6][lines[6].size() - 1] ^= 1;  // flip a payload bit
  {
    std::ofstream out(kPath);
    for (const auto& line : lines) out << line << '\n';
  }
  const ProfileLoadReport report = load_profiles_resilient(kPath);
  EXPECT_FALSE(report.file_quarantined);
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.profiles.size(), 2u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].index, 1u);
  EXPECT_NE(report.quarantined[0].reason.find("checksum"),
            std::string::npos);
  // Records around the damage survive intact (alignment kept).
  EXPECT_EQ(report.profiles[0].condition.seed, 1u);
  EXPECT_EQ(report.profiles[1].condition.seed, 3u);
  // The strict loader refuses the same file loudly.
  EXPECT_THROW((void)load_profiles(kPath), ContractViolation);
  std::remove(kPath);
}

TEST(ProfileIo, ResilientLoadQuarantinesTruncatedTail) {
  save_profiles(kPath, {sample_profile(1), sample_profile(2)});
  std::string text;
  {
    std::ifstream in(kPath);
    std::stringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  // Chop the file in the middle of the second record.
  const std::size_t first_cs = text.find("checksum ");
  ASSERT_NE(first_cs, std::string::npos);
  const std::size_t cut = text.find('\n', first_cs);
  {
    std::ofstream out(kPath);
    out << text.substr(0, cut + 30);
  }
  const ProfileLoadReport report = load_profiles_resilient(kPath);
  EXPECT_FALSE(report.file_quarantined);
  ASSERT_EQ(report.profiles.size(), 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].index, 1u);
  EXPECT_NE(report.quarantined[0].reason.find("truncated"),
            std::string::npos);
  std::remove(kPath);
}

TEST(ProfileIo, ResilientLoadAcceptsV1FilesWithoutChecksums) {
  save_profiles(kPath, {sample_profile(4), sample_profile(5)});
  // Rewrite as a v1 file: old header, no checksum trailers.
  std::string text;
  {
    std::ifstream in(kPath);
    std::stringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  std::istringstream lines(text);
  std::ostringstream v1;
  std::string line;
  bool first = true;
  while (std::getline(lines, line)) {
    if (first) {
      v1 << "stac-profiles v1 2\n";
      first = false;
      continue;
    }
    if (line.rfind("checksum ", 0) == 0) continue;
    v1 << line << '\n';
  }
  {
    std::ofstream out(kPath);
    out << v1.str();
  }
  const ProfileLoadReport report = load_profiles_resilient(kPath);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.version, 1);
  ASSERT_EQ(report.profiles.size(), 2u);
  EXPECT_EQ(report.profiles[0].condition.seed, 4u);
  // v1 files also still satisfy the strict loader.
  EXPECT_EQ(load_profiles(kPath).size(), 2u);
  std::remove(kPath);
}

TEST(ProfileIo, ResilientLoadQuarantinesWholeFileOnMissingOrBadHeader) {
  auto report = load_profiles_resilient("/tmp/stac_definitely_missing.txt");
  EXPECT_TRUE(report.file_quarantined);
  EXPECT_TRUE(report.profiles.empty());
  {
    std::ofstream out(kPath);
    out << "not-a-profile v1 0\n";
  }
  report = load_profiles_resilient(kPath);
  EXPECT_TRUE(report.file_quarantined);
  std::remove(kPath);
}

TEST(ProfileIo, InjectedIoFaultQuarantinesFile) {
  save_profiles(kPath, {sample_profile(9)});
  FaultPlan plan;
  plan.add({.point = "io.load_profile",
            .action = FaultAction::kThrow,
            .every_nth = 1,
            .message = "disk unreadable"});
  {
    FaultScope scope(plan);
    const ProfileLoadReport report = load_profiles_resilient(kPath);
    EXPECT_TRUE(report.file_quarantined);
    EXPECT_EQ(report.file_reason, "disk unreadable");
    EXPECT_THROW((void)load_profiles(kPath), ContractViolation);
  }
  // Chaos disarmed: the same file loads fine.
  EXPECT_EQ(load_profiles(kPath).size(), 1u);
  std::remove(kPath);
}

TEST(ProfileIo, RejectsTruncatedRecord) {
  std::vector<Profile> profiles{sample_profile(7)};
  save_profiles(kPath, profiles);
  // Truncate the file in the middle of the record.
  std::string contents;
  {
    std::ifstream in(kPath);
    std::getline(in, contents);  // header only
  }
  {
    std::ofstream out(kPath);
    out << contents << "\n";  // claims 1 profile, provides none
  }
  EXPECT_THROW((void)load_profiles(kPath), ContractViolation);
  std::remove(kPath);
}

}  // namespace
}  // namespace stac::profiler

#include "profiler/profile_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/check.hpp"

namespace stac::profiler {
namespace {

Profile sample_profile(std::uint64_t seed) {
  Profile p;
  p.condition.primary = wl::Benchmark::kSocial;
  p.condition.collocated = wl::Benchmark::kRedis;
  p.condition.util_primary = 0.87;
  p.condition.util_collocated = 0.31;
  p.condition.timeout_primary = 1.25;
  p.condition.timeout_collocated = 4.5;
  p.condition.mix_primary = 1.17;
  p.condition.mix_collocated = 0.93;
  p.condition.churn = 0.42;
  p.condition.seed = seed;
  p.ea = 0.381;
  p.ea_boost = 0.442;
  p.mean_rt = 2.75;
  p.p95_rt = 6.125;
  p.mean_rt_default = 3.5;
  p.p95_rt_default = 8.25;
  p.mean_service = 0.9;
  p.scaled_base_primary = 7.5;
  p.allocation_ratio = 3.0;
  p.statics = {0.87, 1.25, 0.31, 4.5, 1.0, 2.0, 3.0};
  p.dynamics = {0.12, 0.5, 0.03, 0.0};
  p.image = Matrix(3, 4);
  Rng rng(seed);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) p.image(r, c) = rng.uniform() * 1e6;
  return p;
}

const char* kPath = "/tmp/stac_profile_io_test.txt";

TEST(ProfileIo, RoundTripIsBitExact) {
  std::vector<Profile> profiles{sample_profile(1), sample_profile(2),
                                sample_profile(3)};
  save_profiles(kPath, profiles);
  const auto loaded = load_profiles(kPath);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const Profile& a = profiles[i];
    const Profile& b = loaded[i];
    EXPECT_EQ(a.condition.primary, b.condition.primary);
    EXPECT_EQ(a.condition.collocated, b.condition.collocated);
    EXPECT_DOUBLE_EQ(a.condition.util_primary, b.condition.util_primary);
    EXPECT_DOUBLE_EQ(a.condition.timeout_collocated,
                     b.condition.timeout_collocated);
    EXPECT_DOUBLE_EQ(a.condition.mix_primary, b.condition.mix_primary);
    EXPECT_DOUBLE_EQ(a.condition.churn, b.condition.churn);
    EXPECT_EQ(a.condition.seed, b.condition.seed);
    EXPECT_DOUBLE_EQ(a.ea, b.ea);
    EXPECT_DOUBLE_EQ(a.ea_boost, b.ea_boost);
    EXPECT_DOUBLE_EQ(a.mean_rt, b.mean_rt);
    EXPECT_DOUBLE_EQ(a.scaled_base_primary, b.scaled_base_primary);
    ASSERT_EQ(a.statics.size(), b.statics.size());
    for (std::size_t j = 0; j < a.statics.size(); ++j)
      EXPECT_DOUBLE_EQ(a.statics[j], b.statics[j]);
    ASSERT_EQ(a.dynamics, b.dynamics);
    ASSERT_EQ(a.image.rows(), b.image.rows());
    ASSERT_EQ(a.image.cols(), b.image.cols());
    for (std::size_t r = 0; r < a.image.rows(); ++r)
      for (std::size_t col = 0; col < a.image.cols(); ++col)
        EXPECT_DOUBLE_EQ(a.image(r, col), b.image(r, col));
  }
  std::remove(kPath);
}

TEST(ProfileIo, EmptySetRoundTrips) {
  save_profiles(kPath, {});
  EXPECT_TRUE(load_profiles(kPath).empty());
  std::remove(kPath);
}

TEST(ProfileIo, RejectsMissingFile) {
  EXPECT_THROW((void)load_profiles("/tmp/stac_definitely_missing_file.txt"),
               ContractViolation);
}

TEST(ProfileIo, RejectsWrongMagic) {
  {
    std::ofstream out(kPath);
    out << "not-a-profile v1 0\n";
  }
  EXPECT_THROW((void)load_profiles(kPath), ContractViolation);
  std::remove(kPath);
}

TEST(ProfileIo, RejectsWrongVersion) {
  {
    std::ofstream out(kPath);
    out << "stac-profiles v999 0\n";
  }
  EXPECT_THROW((void)load_profiles(kPath), ContractViolation);
  std::remove(kPath);
}

TEST(ProfileIo, RejectsTruncatedRecord) {
  std::vector<Profile> profiles{sample_profile(7)};
  save_profiles(kPath, profiles);
  // Truncate the file in the middle of the record.
  std::string contents;
  {
    std::ifstream in(kPath);
    std::getline(in, contents);  // header only
  }
  {
    std::ofstream out(kPath);
    out << contents << "\n";  // claims 1 profile, provides none
  }
  EXPECT_THROW((void)load_profiles(kPath), ContractViolation);
  std::remove(kPath);
}

}  // namespace
}  // namespace stac::profiler

#include "profiler/profiler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cachesim/perf_counters.hpp"

namespace stac::profiler {
namespace {

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 400;
  cfg.warmup_completions = 50;
  cfg.max_windows = 2;
  cfg.accesses_per_sample = 1500;
  return cfg;
}

RuntimeCondition sample_condition() {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kBfs;
  c.util_primary = 0.7;
  c.util_collocated = 0.6;
  c.timeout_primary = 1.0;
  c.timeout_collocated = 2.0;
  c.seed = 9;
  return c;
}

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest() : profiler_(fast_config()) {}
  Profiler profiler_;
};

TEST_F(ProfilerTest, PlanUsesConfiguredWays) {
  EXPECT_EQ(profiler_.plan().total_ways(), 20u);
  EXPECT_EQ(profiler_.plan().workload_count(), 2u);
  EXPECT_TRUE(profiler_.plan().valid());
}

TEST_F(ProfilerTest, PairScalesCompressExtremeRatios) {
  // kmeans (5 s) vs redis (1 ms): native ratio 5000, capped at 20.
  const auto s =
      profiler_.pair_scales(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);
  EXPECT_DOUBLE_EQ(s.scaled_base_collocated, 1.0);
  EXPECT_DOUBLE_EQ(s.scaled_base_primary, 20.0);
  // Similar-scale pairs keep their true ratio.
  const auto t =
      profiler_.pair_scales(wl::Benchmark::kKmeans, wl::Benchmark::kBfs);
  EXPECT_DOUBLE_EQ(t.scaled_base_primary / t.scaled_base_collocated,
                   5.0 / 3.0);
}

TEST_F(ProfilerTest, StaticFeaturesMatchNames) {
  const auto f = profiler_.static_features(sample_condition());
  EXPECT_EQ(f.size(), Profiler::static_feature_names().size());
  EXPECT_DOUBLE_EQ(f[0], 0.7);  // util_p
  EXPECT_DOUBLE_EQ(f[1], 1.0);  // timeout_p
  EXPECT_DOUBLE_EQ(f[6], 3.0);  // alloc ratio (1 private + 2 shared)
}

TEST_F(ProfilerTest, ProfileConditionProducesWindows) {
  const auto profiles = profiler_.profile_condition(sample_condition());
  ASSERT_GE(profiles.size(), 1u);
  ASSERT_LE(profiles.size(), 2u);
  for (const auto& p : profiles) {
    EXPECT_EQ(p.image.rows(), 2 * cachesim::kCounterCount);
    EXPECT_EQ(p.image.cols(), fast_config().image_cols);
    EXPECT_GT(p.ea, 0.0);
    EXPECT_LE(p.ea, 1.0);
    EXPECT_GT(p.mean_rt, 0.0);
    EXPECT_GE(p.p95_rt, p.mean_rt);
    EXPECT_GT(p.mean_rt_default, 0.0);
    EXPECT_EQ(p.statics.size(), Profiler::static_feature_names().size());
    EXPECT_EQ(p.dynamics.size(), Profiler::dynamic_feature_names().size());
    EXPECT_DOUBLE_EQ(p.allocation_ratio, 3.0);
    EXPECT_GT(p.norm_mean_rt(), 0.9);  // response >= ~service time
  }
  // All windows of one condition share the run-level EA.
  if (profiles.size() == 2)
    EXPECT_DOUBLE_EQ(profiles[0].ea, profiles[1].ea);
}

TEST_F(ProfilerTest, ImageContainsNonzeroCounters) {
  const auto profiles = profiler_.profile_condition(sample_condition());
  ASSERT_FALSE(profiles.empty());
  const Matrix& img = profiles[0].image;
  double total = 0.0;
  for (std::size_t r = 0; r < img.rows(); ++r)
    for (std::size_t c = 0; c < img.cols(); ++c) total += img(r, c);
  EXPECT_GT(total, 0.0);
}

TEST_F(ProfilerTest, DeterministicForSeed) {
  const auto a = profiler_.profile_condition(sample_condition());
  const auto b = profiler_.profile_condition(sample_condition());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a[0].ea, b[0].ea);
  EXPECT_DOUBLE_EQ(a[0].mean_rt, b[0].mean_rt);
  EXPECT_DOUBLE_EQ(a[0].image(3, 7), b[0].image(3, 7));
}

TEST_F(ProfilerTest, BatchMatchesIndividual) {
  const std::vector<RuntimeCondition> conditions{sample_condition()};
  const auto batch = profiler_.profile_conditions(conditions);
  const auto solo = profiler_.profile_condition(sample_condition());
  ASSERT_EQ(batch.size(), solo.size());
  EXPECT_DOUBLE_EQ(batch[0].ea, solo[0].ea);
}

TEST_F(ProfilerTest, ToSampleShuffleIsConsistentPermutation) {
  const auto profiles = profiler_.profile_condition(sample_condition());
  ASSERT_FALSE(profiles.empty());
  const auto plain = Profiler::to_sample(profiles[0], false);
  const auto shuf1 = Profiler::to_sample(profiles[0], true, 42);
  const auto shuf2 = Profiler::to_sample(profiles[0], true, 42);
  EXPECT_EQ(plain.image.rows(), shuf1.image.rows());
  // Same seed -> same permutation.
  for (std::size_t r = 0; r < shuf1.image.rows(); ++r)
    EXPECT_DOUBLE_EQ(shuf1.image(r, 0), shuf2.image(r, 0));
  // Row multiset preserved.
  std::multiset<double> a, b;
  for (std::size_t r = 0; r < plain.image.rows(); ++r) {
    a.insert(plain.image(r, 0));
    b.insert(shuf1.image(r, 0));
  }
  EXPECT_EQ(a, b);
  // Tabular features identical either way.
  EXPECT_EQ(plain.tabular, shuf1.tabular);
}

TEST_F(ProfilerTest, EaBoostIsThePotentialCeiling) {
  const auto profiles = profiler_.profile_condition(sample_condition());
  ASSERT_FALSE(profiles.empty());
  const auto& p = profiles[0];
  EXPECT_GT(p.ea_boost, 0.0);
  EXPECT_LE(p.ea_boost, 1.0);
  // Always-boost can only speed the primary up relative to its own policy
  // (the neighbour is held fixed): potential EA >= policy EA, modulo
  // simulation noise.
  EXPECT_GE(p.ea_boost, p.ea - 0.03);
}

TEST_F(ProfilerTest, QueryMixScalesMissBehaviour) {
  const auto lean = profiler_.make_mixed_model(wl::Benchmark::kKmeans, 0.7);
  const auto heavy = profiler_.make_mixed_model(wl::Benchmark::kKmeans, 1.4);
  // A heavier mix (larger hot working sets) misses more at every
  // allocation and keeps the same calibrated baseline service time.
  EXPECT_GT(heavy.miss_ratio(3.0), lean.miss_ratio(3.0));
  EXPECT_NEAR(heavy.baseline_service_time(), lean.baseline_service_time(),
              1e-9);
}

TEST_F(ProfilerTest, ChurnLowersMeasuredEaBoost) {
  RuntimeCondition calm = sample_condition();
  calm.churn = 0.1;
  RuntimeCondition stormy = sample_condition();
  stormy.churn = 0.6;
  const auto a = profiler_.profile_condition(calm);
  const auto b = profiler_.profile_condition(stormy);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // Heavier background displacement erodes the boost benefit.
  EXPECT_GT(a[0].ea_boost, b[0].ea_boost - 0.01);
}

TEST_F(ProfilerTest, NeverBoostConditionHasEaOneOverRatio) {
  RuntimeCondition c = sample_condition();
  c.timeout_primary = 6.0;
  c.timeout_collocated = 6.0;
  const auto profiles = profiler_.profile_condition(c);
  ASSERT_FALSE(profiles.empty());
  // No speedup over the default run (same seed): EA == 1/ratio exactly.
  EXPECT_NEAR(profiles[0].ea, 1.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace stac::profiler

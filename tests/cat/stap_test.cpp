#include "cat/stap.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::cat {
namespace {

PolicyAllocations pa() { return {{0, 1}, {0, 3}}; }

TEST(Stap, ShouldBoostCrossesTimeout) {
  const Stap s{pa(), 1.5};
  EXPECT_FALSE(s.should_boost(1.4, 1.0));
  EXPECT_FALSE(s.should_boost(1.5, 1.0));  // strict inequality (Eq. 4)
  EXPECT_TRUE(s.should_boost(1.6, 1.0));
}

TEST(Stap, TimeoutScalesWithExpectedService) {
  const Stap s{pa(), 2.0};
  EXPECT_FALSE(s.should_boost(150.0, 100.0));
  EXPECT_TRUE(s.should_boost(201.0, 100.0));
}

TEST(Stap, NeverPolicyNeverBoosts) {
  const Stap s = Stap::never(pa());
  EXPECT_FALSE(s.should_boost(1e9, 1.0));
}

TEST(Stap, AlwaysPolicyBoostsImmediately) {
  const Stap s = Stap::always(pa());
  EXPECT_TRUE(s.should_boost(1e-9, 1.0));
}

TEST(Stap, SixHundredPercentIsNever) {
  const Stap s{pa(), kNeverBoostTimeout};
  EXPECT_FALSE(s.should_boost(100.0, 1.0));
}

TEST(Stap, AllocationRatio) {
  EXPECT_DOUBLE_EQ((Stap{pa(), 1.0}).allocation_ratio(), 3.0);
  const Stap same{{{2, 2}, {2, 2}}, 1.0};
  EXPECT_DOUBLE_EQ(same.allocation_ratio(), 1.0);
}

TEST(StapVector, BuiltFromPlan) {
  const AllocationPlan plan = make_pair_plan(8, 1, 2);
  const StapVector v = make_stap_vector(plan, {0.5, 2.0});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0].timeout_rel, 0.5);
  EXPECT_DOUBLE_EQ(v[1].timeout_rel, 2.0);
  EXPECT_EQ(v[0].allocations, plan.policy(0));
  EXPECT_THROW(make_stap_vector(plan, {0.5}), ContractViolation);
}

}  // namespace
}  // namespace stac::cat

#include "cat/cat_controller.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/fault_injection.hpp"

namespace stac::cat {
namespace {

cachesim::HierarchyConfig hw_cfg() {
  cachesim::HierarchyConfig c;
  c.l1d = {8 * 1024, 8, 64, 4};
  c.l1i = {8 * 1024, 8, 64, 4};
  c.l2 = {64 * 1024, 16, 64, 12};
  c.llc = {512 * 1024, 8, 64, 40};
  return c;
}

class CatControllerTest : public ::testing::Test {
 protected:
  CatControllerTest()
      : hw_(hw_cfg(), 2), plan_(make_pair_plan(8, 1, 2)), cat_(hw_, plan_) {}

  cachesim::CacheHierarchy hw_;
  AllocationPlan plan_;
  CatController cat_;
};

TEST_F(CatControllerTest, InitialMasksAreDefaults) {
  EXPECT_EQ(hw_.llc_fill_mask(0), plan_.policy(0).dflt.mask());
  EXPECT_EQ(hw_.llc_fill_mask(1), plan_.policy(1).dflt.mask());
  EXPECT_FALSE(cat_.is_boosted(0));
  EXPECT_EQ(cat_.switch_count(), 0u);
}

TEST_F(CatControllerTest, BoostSwitchesMask) {
  cat_.boost(0);
  EXPECT_TRUE(cat_.is_boosted(0));
  EXPECT_EQ(hw_.llc_fill_mask(0), plan_.policy(0).boosted.mask());
  EXPECT_EQ(cat_.switch_count(), 1u);
  cat_.unboost(0);
  EXPECT_FALSE(cat_.is_boosted(0));
  EXPECT_EQ(hw_.llc_fill_mask(0), plan_.policy(0).dflt.mask());
  EXPECT_EQ(cat_.switch_count(), 2u);
}

TEST_F(CatControllerTest, RefcountedBoostSingleSwitch) {
  // §4: multiple outstanding queries share one class-of-service switch.
  cat_.boost(0);
  cat_.boost(0);
  cat_.boost(0);
  EXPECT_EQ(cat_.switch_count(), 1u);
  cat_.unboost(0);
  cat_.unboost(0);
  EXPECT_TRUE(cat_.is_boosted(0));  // one query still outstanding
  cat_.unboost(0);
  EXPECT_FALSE(cat_.is_boosted(0));
  EXPECT_EQ(cat_.switch_count(), 2u);
}

TEST_F(CatControllerTest, UnboostWithoutBoostIsCountedNoOp) {
  // A leaked unboost (double release) must not underflow the refcount or
  // flip masks — it is tolerated and counted for post-run auditing.
  cat_.unboost(0);
  EXPECT_FALSE(cat_.is_boosted(0));
  EXPECT_EQ(hw_.llc_fill_mask(0), plan_.policy(0).dflt.mask());
  EXPECT_EQ(cat_.switch_count(), 0u);
  EXPECT_EQ(cat_.fault_stats().spurious_unboosts, 1u);
  cat_.unboost(0);
  EXPECT_EQ(cat_.fault_stats().spurious_unboosts, 2u);
}

TEST_F(CatControllerTest, AccessorsRejectOutOfRangeWorkload) {
  EXPECT_THROW(cat_.boost(2), ContractViolation);
  EXPECT_THROW(cat_.unboost(2), ContractViolation);
  EXPECT_THROW(cat_.reset_boost(2), ContractViolation);
  EXPECT_THROW((void)cat_.is_boosted(2), ContractViolation);
  EXPECT_THROW((void)cat_.current_allocation(2), ContractViolation);
  EXPECT_THROW((void)cat_.occupancy(2), ContractViolation);
  EXPECT_THROW((void)cat_.degraded(2), ContractViolation);
  EXPECT_THROW(cat_.clear_degraded(2), ContractViolation);
}

TEST_F(CatControllerTest, TransientApplyFailureIsRetried) {
  // Every 2nd cat.apply write fails once; the retry loop absorbs it and the
  // boost still lands.
  FaultPlan plan;
  plan.add({.point = "cat.apply",
            .action = FaultAction::kThrow,
            .every_nth = 2});
  FaultScope scope(plan);
  cat_.boost(0);
  cat_.unboost(0);
  EXPECT_FALSE(cat_.is_boosted(0));
  EXPECT_EQ(cat_.switch_count(), 2u);
  EXPECT_GE(cat_.fault_stats().write_failures, 1u);
  EXPECT_GE(cat_.fault_stats().write_retries, 1u);
  EXPECT_EQ(cat_.fault_stats().degraded_reverts, 0u);
}

TEST_F(CatControllerTest, PersistentApplyFailureDegradesWorkload) {
  FaultPlan plan;
  plan.add({.point = "cat.apply",
            .action = FaultAction::kThrow,
            .probability = 1.0});
  FaultScope scope(plan);
  cat_.boost(0);  // every attempt fails -> degraded, reverted to default
  EXPECT_TRUE(cat_.degraded(0));
  EXPECT_FALSE(cat_.is_boosted(0));
  EXPECT_EQ(hw_.llc_fill_mask(0), plan_.policy(0).dflt.mask());
  EXPECT_EQ(cat_.fault_stats().degraded_reverts, 1u);
  // Degraded workloads ignore boosts...
  cat_.boost(0);
  EXPECT_FALSE(cat_.is_boosted(0));
  // ...until an operator re-admits them.
  scope.disarm();
  cat_.clear_degraded(0);
  cat_.boost(0);
  EXPECT_TRUE(cat_.is_boosted(0));
}

TEST_F(CatControllerTest, WatchdogRevokesExpiredLease) {
  CatResilienceConfig res;
  res.max_boost_lease = 5.0;
  CatController cat(hw_, plan_, res);
  cat.boost(0, /*now=*/1.0);
  cat.boost(0, /*now=*/1.5);  // refcount 2, lease stamped at first grant
  EXPECT_EQ(cat.poll_watchdog(3.0), 0u);  // within lease
  EXPECT_EQ(cat.poll_watchdog(7.0), 1u);  // 7.0 - 1.0 > 5.0 -> revoked
  EXPECT_FALSE(cat.is_boosted(0));
  EXPECT_EQ(hw_.llc_fill_mask(0), plan_.policy(0).dflt.mask());
  EXPECT_EQ(cat.fault_stats().watchdog_revocations, 1u);
  // The stale grants' releases become counted no-ops.
  cat.unboost(0);
  cat.unboost(0);
  EXPECT_EQ(cat.fault_stats().spurious_unboosts, 2u);
}

TEST_F(CatControllerTest, ResetBoostForcesDefault) {
  cat_.boost(1);
  cat_.boost(1);
  cat_.reset_boost(1);
  EXPECT_FALSE(cat_.is_boosted(1));
  EXPECT_EQ(hw_.llc_fill_mask(1), plan_.policy(1).dflt.mask());
  // Idempotent when not boosted.
  cat_.reset_boost(1);
  EXPECT_FALSE(cat_.is_boosted(1));
}

TEST_F(CatControllerTest, IndependentWorkloads) {
  cat_.boost(0);
  EXPECT_TRUE(cat_.is_boosted(0));
  EXPECT_FALSE(cat_.is_boosted(1));
  EXPECT_EQ(hw_.llc_fill_mask(1), plan_.policy(1).dflt.mask());
}

TEST_F(CatControllerTest, OccupancyQueriesHierarchy) {
  EXPECT_EQ(cat_.occupancy(0), 0u);
  hw_.access(0, {0x100, cachesim::AccessType::kLoad});
  EXPECT_EQ(cat_.occupancy(0), 1u);
}

TEST(CatController, RejectsMismatchedPlan) {
  cachesim::CacheHierarchy hw(hw_cfg(), 2);
  const AllocationPlan plan = make_pair_plan(20, 1, 2);  // 20-way plan
  EXPECT_THROW(CatController(hw, plan), ContractViolation);
}

TEST(CatController, BoostedFillsReachSharedWays) {
  cachesim::CacheHierarchy hw(hw_cfg(), 2);
  const AllocationPlan plan = make_pair_plan(8, 1, 2);
  CatController cat(hw, plan);
  // Default: workload 0 fills only way 0 -> occupancy bounded by sets.
  for (std::uint64_t i = 0; i < 5000; ++i)
    hw.access(0, {i * 64, cachesim::AccessType::kLoad});
  const std::size_t dflt_occ = cat.occupancy(0);
  EXPECT_LE(dflt_occ, hw.config().llc.sets());
  // Boosted: three ways available, footprint can triple.
  cat.boost(0);
  for (std::uint64_t i = 0; i < 30000; ++i)
    hw.access(0, {i * 64, cachesim::AccessType::kLoad});
  EXPECT_GT(cat.occupancy(0), 2 * dflt_occ);
}

}  // namespace
}  // namespace stac::cat

#include "cat/schemata.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::cat {
namespace {

TEST(Schemata, ParseSingleDomain) {
  const Schemata s = parse_schemata("L3:0=7ff0");
  EXPECT_EQ(s.resource, "L3");
  ASSERT_EQ(s.entries.size(), 1u);
  EXPECT_EQ(s.entries[0].domain, 0u);
  EXPECT_EQ(s.entries[0].mask, 0x7ff0u);
}

TEST(Schemata, ParseMultipleDomains) {
  const Schemata s = parse_schemata("L3:0=ff;1=f0;3=3");
  ASSERT_EQ(s.entries.size(), 3u);
  EXPECT_EQ(s.entries[1].domain, 1u);
  EXPECT_EQ(s.entries[1].mask, 0xf0u);
  EXPECT_EQ(s.entries[2].domain, 3u);
  EXPECT_EQ(s.entries[2].mask, 0x3u);
}

TEST(Schemata, ParseUppercaseHex) {
  const Schemata s = parse_schemata("L3:0=FF0");
  EXPECT_EQ(s.entries[0].mask, 0xff0u);
}

TEST(Schemata, RejectsMalformedLines) {
  EXPECT_THROW((void)parse_schemata("L3"), ContractViolation);          // no colon
  EXPECT_THROW((void)parse_schemata("L3:"), ContractViolation);         // no pairs
  EXPECT_THROW((void)parse_schemata(":0=ff"), ContractViolation);       // no res
  EXPECT_THROW((void)parse_schemata("L3:0"), ContractViolation);        // no '='
  EXPECT_THROW((void)parse_schemata("L3:x=ff"), ContractViolation);     // bad dom
  EXPECT_THROW((void)parse_schemata("L3:0=zz"), ContractViolation);     // bad hex
  EXPECT_THROW((void)parse_schemata("L3:0="), ContractViolation);       // empty
}

TEST(Schemata, RejectsNonContiguousMask) {
  // Hardware rejects non-contiguous CBMs; so do we.
  EXPECT_THROW((void)parse_schemata("L3:0=f0f"), ContractViolation);
  EXPECT_THROW((void)parse_schemata("L3:0=5"), ContractViolation);
}

TEST(Schemata, FormatRoundTrip) {
  const Schemata s = parse_schemata("L3:0=7ff0;1=f");
  EXPECT_EQ(parse_schemata(format_schemata(s)), s);
}

TEST(Schemata, AllocationRoundTrip) {
  const Allocation a{4, 7};  // ways 4..10
  const std::string line = allocation_to_schemata(a, 1);
  EXPECT_EQ(line, "L3:1=7f0");
  EXPECT_EQ(schemata_to_allocation(parse_schemata(line), 1), a);
}

TEST(Schemata, MissingDomainThrows) {
  const Schemata s = parse_schemata("L3:0=ff");
  EXPECT_THROW((void)schemata_to_allocation(s, 2), ContractViolation);
}

TEST(Schemata, PlanToSchemataBothSettings) {
  const AllocationPlan plan = make_pair_plan(20, 1, 2);
  const auto dflt = plan_to_schemata(plan, /*boosted=*/false);
  const auto boosted = plan_to_schemata(plan, /*boosted=*/true);
  ASSERT_EQ(dflt.size(), 2u);
  EXPECT_EQ(dflt[0], "L3:0=1");       // way 0
  EXPECT_EQ(boosted[0], "L3:0=7");    // ways 0..2
  EXPECT_EQ(dflt[1], "L3:0=8");       // way 3
  EXPECT_EQ(boosted[1], "L3:0=e");    // ways 1..3
  // Each line parses back to the plan's allocation.
  for (std::size_t w = 0; w < 2; ++w) {
    EXPECT_EQ(schemata_to_allocation(parse_schemata(dflt[w])),
              plan.policy(w).dflt);
    EXPECT_EQ(schemata_to_allocation(parse_schemata(boosted[w])),
              plan.policy(w).boosted);
  }
}

TEST(Schemata, MaskOverflowRejected) {
  EXPECT_THROW((void)parse_schemata("L3:0=1ffffffff"), ContractViolation);
}

}  // namespace
}  // namespace stac::cat

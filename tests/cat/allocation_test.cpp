#include "cat/allocation.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::cat {
namespace {

TEST(Allocation, BasicGeometry) {
  const Allocation a{2, 3};
  EXPECT_EQ(a.end(), 5u);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(a.contains(2));
  EXPECT_TRUE(a.contains(4));
  EXPECT_FALSE(a.contains(5));
  EXPECT_FALSE(a.contains(1));
}

TEST(Allocation, Overlaps) {
  const Allocation a03{0, 3}, a22{2, 2}, a02{0, 2}, empty{0, 0}, a05{0, 5};
  EXPECT_TRUE(a03.overlaps(a22));
  EXPECT_FALSE(a02.overlaps(a22));
  EXPECT_FALSE(empty.overlaps(a05));
}

TEST(Allocation, Intersect) {
  const Allocation a{0, 4}, b{2, 4};
  const Allocation i = a.intersect(b);
  EXPECT_EQ(i.offset, 2u);
  EXPECT_EQ(i.length, 2u);
  const Allocation c{0, 2}, d{3, 2};
  EXPECT_TRUE(c.intersect(d).empty());
}

TEST(Allocation, SubsetOf) {
  const Allocation inner{1, 2}, outer{0, 4}, wide{1, 4}, empty{0, 0},
      point{3, 1};
  EXPECT_TRUE(inner.subset_of(outer));
  EXPECT_FALSE(wide.subset_of(outer));
  EXPECT_TRUE(empty.subset_of(point));
}

TEST(Allocation, MaskGeneration) {
  const Allocation a{0, 1}, b{1, 2}, c{4, 4}, empty{0, 0};
  EXPECT_EQ(a.mask(), 0b1u);
  EXPECT_EQ(b.mask(), 0b110u);
  EXPECT_EQ(c.mask(), 0b11110000u);
  EXPECT_EQ(empty.mask(), 0u);
}

TEST(Allocation, MaskContiguity) {
  EXPECT_TRUE(mask_contiguous(0b1));
  EXPECT_TRUE(mask_contiguous(0b1110));
  EXPECT_FALSE(mask_contiguous(0b1011));
  EXPECT_FALSE(mask_contiguous(0));
}

TEST(Allocation, FromMaskRoundTrip) {
  for (std::uint32_t off = 0; off < 8; ++off) {
    for (std::uint32_t len = 1; off + len <= 8; ++len) {
      const Allocation a{off, len};
      const Allocation b = allocation_from_mask(a.mask());
      EXPECT_EQ(a, b);
    }
  }
}

TEST(Allocation, FromMaskRejectsNonContiguous) {
  EXPECT_THROW((void)allocation_from_mask(0b101), ContractViolation);
  EXPECT_THROW((void)allocation_from_mask(0), ContractViolation);
}

TEST(Allocation, Validity) {
  EXPECT_TRUE(allocation_valid({0, 1}, 20));
  EXPECT_TRUE(allocation_valid({18, 2}, 20));
  EXPECT_FALSE(allocation_valid({19, 2}, 20));  // spills past the LLC
  EXPECT_FALSE(allocation_valid({0, 0}, 20));   // CAT requires >= 1 way
}

TEST(Allocation, ToString) {
  EXPECT_EQ((Allocation{2, 3}).to_string(), "[2,5)");
}

}  // namespace
}  // namespace stac::cat

#include "cat/allocation_plan.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::cat {
namespace {

TEST(AllocationPlan, PairPlanMatchesPaperExample) {
  // §5: w0 private ways {0}, shared {1,2}, w1 private {3} on a small LLC.
  const AllocationPlan plan = make_pair_plan(8, 1, 2);
  EXPECT_EQ(plan.workload_count(), 2u);
  EXPECT_EQ(plan.policy(0).dflt, (Allocation{0, 1}));
  EXPECT_EQ(plan.policy(0).boosted, (Allocation{0, 3}));
  EXPECT_EQ(plan.policy(1).dflt, (Allocation{3, 1}));
  EXPECT_EQ(plan.policy(1).boosted, (Allocation{1, 3}));
  EXPECT_TRUE(plan.valid());
}

TEST(AllocationPlan, PairPlanPrivateAndSharedWays) {
  const AllocationPlan plan = make_pair_plan(8, 2, 2);
  EXPECT_EQ(plan.private_ways(0), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(plan.private_ways(1), (std::vector<std::uint32_t>{4, 5}));
  EXPECT_EQ(plan.shared_ways(0), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(plan.shared_ways(1), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_TRUE(plan.all_have_private());
}

TEST(AllocationPlan, PairPlanTooBigThrows) {
  EXPECT_THROW(make_pair_plan(4, 2, 2), ContractViolation);
}

TEST(AllocationPlan, ChainPlanStructure) {
  const AllocationPlan plan = make_chain_plan(10, 3, 2, 1);
  EXPECT_EQ(plan.workload_count(), 3u);
  EXPECT_TRUE(plan.valid());
  EXPECT_TRUE(plan.all_have_private());
  // Middle workload shares with both neighbours; ends share with one.
  EXPECT_EQ(plan.sharers_of(0).size(), 1u);
  EXPECT_EQ(plan.sharers_of(1).size(), 2u);
  EXPECT_EQ(plan.sharers_of(2).size(), 1u);
  EXPECT_TRUE(plan.sharing_degree_at_most_two());
  EXPECT_TRUE(plan.private_regions_disjoint());
}

TEST(AllocationPlan, SingleWorkloadChain) {
  const AllocationPlan plan = make_chain_plan(4, 1, 2, 1);
  EXPECT_EQ(plan.workload_count(), 1u);
  EXPECT_TRUE(plan.sharers_of(0).empty());
  EXPECT_EQ(plan.shared_ways(0).size(), 0u);
}

TEST(AllocationPlan, PrivateWaysRespectEquationOne) {
  // Workload 0's setting is swallowed by workload 1's: no private ways.
  std::vector<PolicyAllocations> ps{
      {{1, 1}, {1, 1}},
      {{0, 4}, {0, 4}},
  };
  const AllocationPlan plan(4, ps);
  EXPECT_TRUE(plan.private_ways(0).empty());
  EXPECT_FALSE(plan.all_have_private());
}

TEST(AllocationPlan, InvalidWhenBoostedDoesNotCoverDefault) {
  std::vector<PolicyAllocations> ps{
      {{0, 2}, {1, 1}},  // boosted excludes default way 0
      {{2, 2}, {2, 2}},
  };
  const AllocationPlan plan(4, ps);
  EXPECT_FALSE(plan.valid());
}

// §2 conjecture 1: under the premise that every policy retains private
// ways, private regions are contiguous, disjoint and non-interleaved.
// §2 conjecture 2: each policy shares cache with at most two others.
// The exhaustive search over small way counts must find no counterexample.
class ConjectureSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::size_t>> {
};

TEST_P(ConjectureSweep, NoCounterexamples) {
  const auto [ways, workloads] = GetParam();
  const ConjectureSearchResult r =
      search_conjecture_counterexamples(ways, workloads);
  EXPECT_GT(r.plans_examined, 0u);
  EXPECT_FALSE(r.conjecture1_counterexample.has_value())
      << r.conjecture1_counterexample->to_string();
  EXPECT_FALSE(r.conjecture2_counterexample.has_value())
      << r.conjecture2_counterexample->to_string();
}

INSTANTIATE_TEST_SUITE_P(
    SmallConfigs, ConjectureSweep,
    ::testing::Values(std::pair<std::uint32_t, std::size_t>{4, 2},
                      std::pair<std::uint32_t, std::size_t>{6, 2},
                      std::pair<std::uint32_t, std::size_t>{8, 2},
                      std::pair<std::uint32_t, std::size_t>{4, 3},
                      std::pair<std::uint32_t, std::size_t>{5, 3}));

TEST(ConjectureSearch, RefusesLargeConfigs) {
  EXPECT_THROW(search_conjecture_counterexamples(16, 3), ContractViolation);
}

TEST(AllocationPlan, SharingDegreeViolationDetectedWithoutPremise) {
  // Three workloads all sharing one region: each has 2 sharers (fine), but
  // drop the premise and pile a fourth in to exceed the bound.
  std::vector<PolicyAllocations> ps{
      {{0, 1}, {0, 4}},
      {{1, 1}, {0, 4}},
      {{2, 1}, {0, 4}},
      {{3, 1}, {0, 4}},
  };
  const AllocationPlan plan(4, ps);
  EXPECT_FALSE(plan.sharing_degree_at_most_two());
  // And indeed the premise fails: nobody retains private ways.
  EXPECT_FALSE(plan.all_have_private());
}

}  // namespace
}  // namespace stac::cat

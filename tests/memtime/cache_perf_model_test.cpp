#include "memtime/cache_perf_model.hpp"

#include <gtest/gtest.h>

namespace stac::memtime {
namespace {

TEST(CachePerfModel, SequentialHitIsTagsPlusData) {
  const CachePerfModel m(CachePerfSpec{4, 9, LookupMode::kSequential});
  EXPECT_EQ(m.hit_cycles(), 13u);
  EXPECT_EQ(m.miss_cycles(), 4u);
  EXPECT_FALSE(m.flat());
}

TEST(CachePerfModel, ParallelHitIsDataMissIsFree) {
  const CachePerfModel m(CachePerfSpec{3, 5, LookupMode::kParallel});
  EXPECT_EQ(m.hit_cycles(), 5u);
  EXPECT_EQ(m.miss_cycles(), 0u);
  EXPECT_FALSE(m.flat());
}

TEST(CachePerfModel, FlatReproducesLegacyScalar) {
  // The legacy model charges the scalar on every traversal, hit or miss;
  // flat() must encode exactly that so timing-off identity is provable.
  const CachePerfModel m(CachePerfSpec::flat(42));
  EXPECT_EQ(m.hit_cycles(), 42u);
  EXPECT_EQ(m.miss_cycles(), 42u);
  EXPECT_TRUE(m.flat());
}

TEST(CachePerfModel, DefaultIsZeroAndFlat) {
  const CachePerfModel m;
  EXPECT_EQ(m.hit_cycles(), 0u);
  EXPECT_EQ(m.miss_cycles(), 0u);
  EXPECT_TRUE(m.flat());
}

TEST(CachePerfModel, SequentialWithZeroDataIsFlat) {
  // A sequential split with data = 0 degenerates to the flat shape even
  // when not built through flat().
  const CachePerfModel m(CachePerfSpec{7, 0, LookupMode::kSequential});
  EXPECT_TRUE(m.flat());
  EXPECT_EQ(m.hit_cycles(), m.miss_cycles());
}

}  // namespace
}  // namespace stac::memtime

#include "memtime/dram_perf_model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "memtime/mem_time.hpp"

namespace stac::memtime {
namespace {

DramPerfSpec queued_spec(double bw = 8.0) {
  DramPerfSpec s;
  s.base_latency_cycles = 100;
  s.bandwidth_bytes_per_cycle = bw;
  s.window_cycles = 1024;
  s.max_queue_factor = 8.0;
  return s;
}

TEST(DramPerfModel, ZeroBaseInheritsDeprecatedScalar) {
  const DramPerfModel m(DramPerfSpec{}, 220);
  EXPECT_EQ(m.base_latency(), 220u);
  EXPECT_FALSE(m.queue_enabled());
}

TEST(DramPerfModel, ExplicitBaseOverridesScalar) {
  DramPerfSpec s;
  s.base_latency_cycles = 150;
  const DramPerfModel m(s, 220);
  EXPECT_EQ(m.base_latency(), 150u);
}

TEST(DramPerfModel, QueueOffIsConstantLatency) {
  // bandwidth 0 = the legacy constant-latency model: every access costs
  // exactly the base, independent of time and traffic.
  DramPerfModel m(DramPerfSpec{}, 220);
  for (int i = 0; i < 1000; ++i) {
    const DramAccessTime t = m.access(static_cast<std::uint64_t>(i) * 3, 64);
    EXPECT_EQ(t.total, 220u);
    EXPECT_EQ(t.queue, 0u);
    EXPECT_EQ(t.transfer, 0u);
  }
  EXPECT_EQ(m.total_queue_cycles(), 0u);
}

TEST(DramPerfModel, FirstAccessPaysNoQueue) {
  DramPerfModel m(queued_spec(), 0);
  const DramAccessTime t = m.access(0, 64);
  EXPECT_EQ(t.queue, 0u);  // no prior offered traffic
  EXPECT_EQ(t.transfer, 8u);  // 64 bytes / 8 B-per-cycle
  EXPECT_EQ(t.total, 100u + 0u + 8u);
}

TEST(DramPerfModel, QueueDelayRisesWithOfferedTraffic) {
  DramPerfModel m(queued_spec(), 0);
  // Saturate the window: offered bytes approach capacity.
  std::uint32_t last_queue = 0;
  bool rose = false;
  for (int i = 0; i < 200; ++i) {
    const DramAccessTime t = m.access(5, 64);  // same window
    EXPECT_GE(t.queue, last_queue);  // nondecreasing within a window
    if (t.queue > last_queue) rose = true;
    last_queue = t.queue;
  }
  EXPECT_TRUE(rose);
  EXPECT_GT(m.total_queue_cycles(), 0u);
}

TEST(DramPerfModel, MonotonicInOfferedBandwidth) {
  // The BENCH_PR10 gate in model form: strictly more offered traffic can
  // never produce a lower modeled latency for the next access.
  for (const int light_n : {1, 4, 16, 64}) {
    DramPerfModel light(queued_spec(), 0);
    DramPerfModel heavy(queued_spec(), 0);
    for (int i = 0; i < light_n; ++i) light.access(10, 64);
    for (int i = 0; i < light_n * 4; ++i) heavy.access(10, 64);
    EXPECT_GE(heavy.access(11, 64).total, light.access(11, 64).total);
  }
}

TEST(DramPerfModel, QueueCappedAtMaxFactor) {
  DramPerfSpec s = queued_spec();
  s.max_queue_factor = 2.0;
  DramPerfModel m(s, 0);
  for (int i = 0; i < 100000; ++i) {
    const DramAccessTime t = m.access(17, 4096);
    EXPECT_LE(t.queue, 200u);  // 2.0 x base(100)
  }
}

TEST(DramPerfModel, ContentionDecaysAcrossIdleWindows) {
  DramPerfModel m(queued_spec(), 0);
  for (int i = 0; i < 500; ++i) m.access(100, 64);
  const std::uint32_t contended = m.access(101, 64).queue;
  EXPECT_GT(contended, 0u);
  // Jump past both tracked windows: the horizon clears entirely.
  const DramAccessTime calm = m.access(100 + 3 * 1024, 64);
  EXPECT_EQ(calm.queue, 0u);
}

TEST(DramPerfModel, OneWindowGapDemotesNotClears) {
  DramPerfModel m(queued_spec(), 0);
  for (int i = 0; i < 500; ++i) m.access(100, 64);
  // One window later the traffic is "previous-window" history: still felt.
  const DramAccessTime t = m.access(100 + 1024, 64);
  EXPECT_GT(t.queue, 0u);
}

TEST(DramPerfModel, ResetForgetsWindowState) {
  DramPerfModel m(queued_spec(), 0);
  for (int i = 0; i < 500; ++i) m.access(100, 64);
  m.reset();
  EXPECT_EQ(m.total_queue_cycles(), 0u);
  EXPECT_EQ(m.access(0, 64).queue, 0u);
}

TEST(DramPerfModel, DeterministicAcrossIdenticalRuns) {
  DramPerfModel a(queued_spec(), 0);
  DramPerfModel b(queued_spec(), 0);
  std::uint64_t now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += static_cast<std::uint64_t>(i % 7);
    const DramAccessTime ta = a.access(now, 64);
    const DramAccessTime tb = b.access(now, 64);
    ASSERT_EQ(ta.total, tb.total);
    ASSERT_EQ(ta.queue, tb.queue);
  }
}

TEST(DramPerfModel, RejectsInvalidSpecs) {
  DramPerfSpec neg = queued_spec();
  neg.max_queue_factor = -1.0;
  EXPECT_THROW(DramPerfModel(neg, 0), ContractViolation);
  DramPerfSpec no_window = queued_spec();
  no_window.window_cycles = 0;
  EXPECT_THROW(DramPerfModel(no_window, 0), ContractViolation);
}

// --- MemTimeSpec resolution and deprecation warnings ---------------------

TEST(MemTimeSpec, DefaultIsFlatEquivalent) {
  const MemTimeSpec spec;
  EXPECT_TRUE(spec.flat_equivalent(4, 4, 12, 42, 220));
}

TEST(MemTimeSpec, ExplicitFlatOverrideStaysFlatEquivalent) {
  MemTimeSpec spec;
  spec.l2 = CachePerfSpec::flat(12);
  EXPECT_TRUE(spec.flat_equivalent(4, 4, 12, 42, 220));
  spec.l2 = CachePerfSpec{4, 9, LookupMode::kSequential};  // split: not flat
  EXPECT_FALSE(spec.flat_equivalent(4, 4, 12, 42, 220));
}

TEST(MemTimeSpec, QueueOrDramCacheBreaksFlatEquivalence) {
  MemTimeSpec spec;
  spec.dram.bandwidth_bytes_per_cycle = 8.0;
  EXPECT_FALSE(spec.flat_equivalent(4, 4, 12, 42, 220));
  MemTimeSpec spec2;
  spec2.dram_cache = DramCacheSpec{};
  EXPECT_FALSE(spec2.flat_equivalent(4, 4, 12, 42, 220));
}

TEST(MemTimeSpec, ResolveLevelInheritsLegacyScalar) {
  const CachePerfSpec inherited = resolve_level(std::nullopt, 42);
  EXPECT_EQ(CachePerfModel(inherited).hit_cycles(), 42u);
  EXPECT_EQ(CachePerfModel(inherited).miss_cycles(), 42u);
  const CachePerfSpec explicit_spec =
      resolve_level(CachePerfSpec{1, 2, LookupMode::kParallel}, 42);
  EXPECT_EQ(CachePerfModel(explicit_spec).hit_cycles(), 2u);
}

TEST(TimingWarnings, InconsistentDramBaseIsFlagged) {
  MemTimeSpec spec;
  spec.dram.base_latency_cycles = 300;
  const auto warnings = timing_warnings(spec, 220);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("deprecated"), std::string::npos);
  EXPECT_NE(warnings[0].find("300"), std::string::npos);
}

TEST(TimingWarnings, ConsistentOrInheritedBaseIsClean) {
  MemTimeSpec inherit;
  EXPECT_TRUE(timing_warnings(inherit, 220).empty());
  MemTimeSpec aligned;
  aligned.dram.base_latency_cycles = 220;
  EXPECT_TRUE(timing_warnings(aligned, 220).empty());
}

TEST(TimingWarnings, DramCacheWithoutExplicitBaseIsFlagged) {
  MemTimeSpec spec;
  DramCacheSpec dc;
  dc.geometry = {1024 * 1024, 16, 64};
  spec.dram_cache = dc;  // stacked channel base left at 0
  const auto warnings = timing_warnings(spec, 220);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("dram_cache"), std::string::npos);
}

TEST(TimingWarnings, InvalidDramCacheGeometryIsFlagged) {
  MemTimeSpec spec;
  DramCacheSpec dc;
  dc.geometry = {1000 * 1000, 12, 64};  // sets not a power of two
  dc.dram.base_latency_cycles = 90;
  spec.dram_cache = dc;
  const auto warnings = timing_warnings(spec, 220);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("geometry"), std::string::npos);
}

TEST(DramCacheGeometry, ValidRequiresPowerOfTwoSets) {
  EXPECT_TRUE((DramCacheGeometry{1024 * 1024, 16, 64}).valid());
  EXPECT_FALSE((DramCacheGeometry{1000 * 1000, 12, 64}).valid());
  EXPECT_FALSE((DramCacheGeometry{0, 16, 64}).valid());
  EXPECT_FALSE((DramCacheGeometry{1024 * 1024, 0, 64}).valid());
}

}  // namespace
}  // namespace stac::memtime

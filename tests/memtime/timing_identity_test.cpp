// Timing-off identity and timed-replay equivalence (DESIGN.md §16).
//
// With the default (flat) timing spec the hierarchy must be bit-identical
// to the pre-timing simulator: every counter unchanged, and the modeled
// cycle totals equal to the closed form sum(counters x latency).  With a
// fully timed spec (split latencies, DRAM queue, stacked tier) the access()
// loop and replay() must still agree bump-for-bump on counters, cycle
// breakdowns and the modeled clock.
#include <gtest/gtest.h>

#include <vector>

#include "cachesim/cache_hierarchy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::cachesim {
namespace {

struct RecordedTrace {
  std::vector<MemoryAccess> refs;
  std::vector<ClassId> classes;
};

// Same adversarial shape as the cachesim replay tests: loop walks, hot
// lines, cold sweeps, all four access types, three classes.
RecordedTrace adversarial_trace(std::size_t n, std::uint64_t seed) {
  RecordedTrace t;
  t.refs.reserve(n);
  t.classes.reserve(n);
  std::uint64_t s = seed | 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  std::uint64_t seq[3] = {0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<ClassId>(next() % 3);
    const std::uint64_t base = (cls + 1) * (1ULL << 32);
    const std::uint64_t pick = next() % 10;
    std::uint64_t addr;
    if (pick < 5) {
      addr = base + (seq[cls] += 8) % (4 * 1024);
    } else if (pick < 8) {
      addr = base + next() % (32 * 1024);
    } else {
      addr = base + next() % (4 * 1024 * 1024);
    }
    auto type = AccessType::kLoad;
    if (pick == 0) type = AccessType::kStore;
    if (pick == 8) type = AccessType::kIfetch;
    if (pick == 9) type = AccessType::kPrefetch;
    t.refs.push_back({addr, type});
    t.classes.push_back(cls);
  }
  return t;
}

HierarchyConfig flat_hw() {
  HierarchyConfig c;
  c.l1d = {8 * 1024, 8, 64, 4};
  c.l1i = {8 * 1024, 8, 64, 4};
  c.l2 = {64 * 1024, 16, 64, 12};
  c.llc = {1024 * 1024, 8, 64, 40};
  c.memory_latency_cycles = 200;
  return c;
}

// Specialized replay tuple (8/8/16/20 SoA ways).
HierarchyConfig flat_specialized_hw() {
  HierarchyConfig c;
  c.l1d = {4 * 1024, 8, 64, 4};
  c.l1i = {4 * 1024, 8, 64, 4};
  c.l2 = {16 * 1024, 16, 64, 12};
  c.llc = {160 * 1024, 20, 64, 40};
  c.memory_latency_cycles = 200;
  return c;
}

// Fully timed: split per-level latencies, DRAM bandwidth queue, stacked
// DRAM-cache tier — every new code path exercised at once.
HierarchyConfig timed_hw() {
  HierarchyConfig c = flat_hw();
  c.timing.l1d = {1, 4, memtime::LookupMode::kParallel};
  c.timing.l1i = {1, 4, memtime::LookupMode::kParallel};
  c.timing.l2 = {4, 8, memtime::LookupMode::kSequential};
  c.timing.llc = {12, 28, memtime::LookupMode::kSequential};
  c.timing.dram.bandwidth_bytes_per_cycle = 8.0;
  c.timing.dram.window_cycles = 4096;
  memtime::DramCacheSpec dc;
  dc.geometry = {4 * 1024 * 1024, 16, 64};
  dc.perf = {20, 0, memtime::LookupMode::kSequential};
  dc.dram.base_latency_cycles = 60;
  dc.dram.bandwidth_bytes_per_cycle = 32.0;
  c.timing.dram_cache = dc;
  return c;
}

// --- satellite: timing-off identity --------------------------------------
//
// Closed form: with flat per-level latencies the modeled per-level cycles
// are exactly (traversals x scalar), and the memory share is exactly
// (memory accesses x memory_latency_cycles) == kStallCycles.

void expect_closed_form(const HierarchyConfig& cfg) {
  ASSERT_TRUE(cfg.timing_flat());
  const RecordedTrace t = adversarial_trace(60000, 0xFEEDull);
  CacheHierarchy hw(cfg, 3);
  const std::uint64_t total =
      hw.replay(t.refs.data(), t.classes.data(), t.refs.size());

  std::uint64_t closed_form_total = 0;
  for (ClassId c = 0; c < 3; ++c) {
    const CounterSnapshot ctr = hw.counters(c);
    const CycleBreakdown cyc = hw.cycles(c);
    const std::uint64_t l1d_traversals =
        ctr.get(Counter::kL1dLoads) + ctr.get(Counter::kL1dStores);
    EXPECT_EQ(cyc.get(CycleLevel::kL1d),
              l1d_traversals * cfg.l1d.latency_cycles);
    EXPECT_EQ(cyc.get(CycleLevel::kL1i),
              ctr.get(Counter::kL1iLoads) * cfg.l1i.latency_cycles);
    EXPECT_EQ(cyc.get(CycleLevel::kL2),
              ctr.get(Counter::kL2Requests) * cfg.l2.latency_cycles);
    EXPECT_EQ(cyc.get(CycleLevel::kLlc),
              (ctr.get(Counter::kLlcLoads) + ctr.get(Counter::kLlcStores)) *
                  cfg.llc.latency_cycles);
    const std::uint64_t mem_accesses =
        ctr.get(Counter::kMemReads) + ctr.get(Counter::kMemWrites);
    EXPECT_EQ(cyc.get(CycleLevel::kDramBase),
              mem_accesses * cfg.memory_latency_cycles);
    EXPECT_EQ(cyc.get(CycleLevel::kDramQueue), 0u);
    EXPECT_EQ(cyc.get(CycleLevel::kDramCache), 0u);
    EXPECT_EQ(cyc.get(CycleLevel::kDramBase),
              ctr.get(Counter::kStallCycles));
    EXPECT_EQ(cyc.accesses, l1d_traversals + ctr.get(Counter::kL1iLoads));
    closed_form_total += cyc.total();
  }
  EXPECT_EQ(total, closed_form_total);
  EXPECT_EQ(hw.clock_cycles(), total);
  EXPECT_EQ(hw.total_cycles().total(), closed_form_total);
}

TEST(TimingIdentity, ClosedFormOnSpecializedLayout) {
  expect_closed_form(flat_specialized_hw());
}

TEST(TimingIdentity, ClosedFormOnGenericSoaLayout) {
  expect_closed_form(flat_hw());
}

TEST(TimingIdentity, ClosedFormOnLegacyLayout) {
  HierarchyConfig cfg = flat_hw();
  cfg.l1d.soa = cfg.l1i.soa = cfg.l2.soa = cfg.llc.soa = false;
  expect_closed_form(cfg);
}

TEST(TimingIdentity, PerAccessLoopMatchesClosedFormToo) {
  const HierarchyConfig cfg = flat_hw();
  const RecordedTrace t = adversarial_trace(20000, 0xABCDull);
  CacheHierarchy hw(cfg, 3);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < t.refs.size(); ++i)
    total += hw.access(t.classes[i], t.refs[i]);
  std::uint64_t breakdown_total = 0;
  for (ClassId c = 0; c < 3; ++c) breakdown_total += hw.cycles(c).total();
  EXPECT_EQ(total, breakdown_total);
  EXPECT_EQ(hw.clock_cycles(), total);
}

// Hit/miss/eviction counters must not depend on the timing spec at all:
// the timed hierarchy sees the exact counter stream the flat one does.
TEST(TimingIdentity, CountersBitIdenticalFlatVsTimed) {
  const RecordedTrace t = adversarial_trace(60000, 0xC0DEull);
  // Same cache geometry; only the timing differs.  The stacked tier is a
  // new level *behind* the LLC, so LLC-and-above behaviour is untouched.
  CacheHierarchy flat(flat_hw(), 3);
  CacheHierarchy timed(timed_hw(), 3);
  flat.replay(t.refs.data(), t.classes.data(), t.refs.size());
  timed.replay(t.refs.data(), t.classes.data(), t.refs.size());
  for (ClassId c = 0; c < 3; ++c) {
    CounterSnapshot a = flat.counters(c);
    CounterSnapshot b = timed.counters(c);
    // The only legitimate differences are the time-derived counters.
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      const auto ctr = static_cast<Counter>(i);
      if (ctr == Counter::kStallCycles || ctr == Counter::kCycles ||
          ctr == Counter::kIpcX1000) {
        continue;
      }
      EXPECT_EQ(a.values[i], b.values[i])
          << "class " << c << " counter " << counter_name(ctr);
    }
    EXPECT_EQ(flat.llc_occupancy(c), timed.llc_occupancy(c));
  }
}

// --- timed replay equivalence ---------------------------------------------

TEST(TimingIdentity, AccessLoopAndReplayAgreeOnTimedConfig) {
  const HierarchyConfig cfg = timed_hw();
  const RecordedTrace t = adversarial_trace(60000, 0xFEEDull);
  CacheHierarchy loop_hw(cfg, 3);
  CacheHierarchy replay_hw(cfg, 3);
  std::uint64_t loop_total = 0;
  for (std::size_t i = 0; i < t.refs.size(); ++i)
    loop_total += loop_hw.access(t.classes[i], t.refs[i]);
  const std::uint64_t replay_total =
      replay_hw.replay(t.refs.data(), t.classes.data(), t.refs.size());
  EXPECT_EQ(loop_total, replay_total);
  EXPECT_EQ(loop_hw.clock_cycles(), replay_hw.clock_cycles());
  for (ClassId c = 0; c < 3; ++c) {
    EXPECT_EQ(loop_hw.counters(c).values, replay_hw.counters(c).values);
    const CycleBreakdown a = loop_hw.cycles(c);
    const CycleBreakdown b = replay_hw.cycles(c);
    EXPECT_EQ(a.cycles, b.cycles) << "class " << c;
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.dram_cache_hits, b.dram_cache_hits);
    EXPECT_EQ(a.dram_cache_misses, b.dram_cache_misses);
  }
}

TEST(TimingIdentity, TimedReplaySplitsAcrossBatchesConsistently) {
  // DRAM window state carries across replay() calls through the modeled
  // clock: one big batch and two half batches must agree exactly.
  const HierarchyConfig cfg = timed_hw();
  const RecordedTrace t = adversarial_trace(40000, 0x5EEDull);
  CacheHierarchy one(cfg, 3);
  CacheHierarchy two(cfg, 3);
  const std::uint64_t total_one =
      one.replay(t.refs.data(), t.classes.data(), t.refs.size());
  const std::size_t half = t.refs.size() / 2;
  const std::uint64_t total_two =
      two.replay(t.refs.data(), t.classes.data(), half) +
      two.replay(t.refs.data() + half, t.classes.data() + half,
                 t.refs.size() - half);
  EXPECT_EQ(total_one, total_two);
  EXPECT_EQ(one.clock_cycles(), two.clock_cycles());
  for (ClassId c = 0; c < 3; ++c)
    EXPECT_EQ(one.cycles(c).cycles, two.cycles(c).cycles);
}

// --- DRAM-cache tier -------------------------------------------------------

TEST(DramCacheTier, AbsorbsLlcMissesAndShortensThem) {
  HierarchyConfig cfg = timed_hw();
  const RecordedTrace t = adversarial_trace(60000, 0xD1CEull);
  CacheHierarchy hw(cfg, 3);
  hw.replay(t.refs.data(), t.classes.data(), t.refs.size());
  const CycleBreakdown total = hw.total_cycles();
  // The cold 4 MB sweep overflows the 1 MB LLC but fits the 4 MB tier:
  // both hits and misses must occur, and hits bypass main DRAM entirely.
  EXPECT_GT(total.dram_cache_hits, 0u);
  EXPECT_GT(total.dram_cache_misses, 0u);
  EXPECT_GT(total.get(CycleLevel::kDramCache), 0u);
  // Main-DRAM base cycles correspond to tier *misses* only.
  const CounterSnapshot c0 = hw.counters(0);
  const CounterSnapshot c1 = hw.counters(1);
  const CounterSnapshot c2 = hw.counters(2);
  const std::uint64_t mem_accesses =
      c0.get(Counter::kMemReads) + c0.get(Counter::kMemWrites) +
      c1.get(Counter::kMemReads) + c1.get(Counter::kMemWrites) +
      c2.get(Counter::kMemReads) + c2.get(Counter::kMemWrites);
  EXPECT_EQ(total.dram_cache_hits + total.dram_cache_misses, mem_accesses);
  EXPECT_TRUE(hw.has_dram_cache());
}

TEST(DramCacheTier, HitIsCheaperThanMainDram) {
  HierarchyConfig cfg = timed_hw();
  // Quiet channels: isolate base latencies.
  cfg.timing.dram.bandwidth_bytes_per_cycle = 0.0;
  cfg.timing.dram_cache->dram.bandwidth_bytes_per_cycle = 0.0;
  CacheHierarchy hw(cfg, 1);
  const MemoryAccess ref{0x100000, AccessType::kLoad};
  const std::uint32_t cold = hw.access(0, ref);  // miss everywhere
  // Evict from L1/L2/LLC by sweeping their sets, keeping the tier resident.
  for (std::uint64_t i = 1; i <= 40000; ++i)
    hw.access(0, {0x100000 + i * 64, AccessType::kLoad});
  const CycleBreakdown before = hw.cycles(0);
  const std::uint32_t warm = hw.access(0, ref);
  const CycleBreakdown after = hw.cycles(0);
  if (after.dram_cache_hits == before.dram_cache_hits + 1) {
    // Tier hit: stacked base (60) instead of main DRAM (200).
    EXPECT_LT(warm, cold);
  }
}

// --- reset / accumulate audit ---------------------------------------------

TEST(TimingReset, ResetClearsCyclesClockAndDramWindows) {
  const HierarchyConfig cfg = timed_hw();
  const RecordedTrace t = adversarial_trace(30000, 0xFACEull);
  CacheHierarchy hw(cfg, 3);
  hw.replay(t.refs.data(), t.classes.data(), t.refs.size());
  ASSERT_GT(hw.total_cycles().total(), 0u);
  hw.reset();
  EXPECT_EQ(hw.clock_cycles(), 0u);
  EXPECT_EQ(hw.total_cycles().total(), 0u);
  EXPECT_EQ(hw.total_cycles().accesses, 0u);
  EXPECT_EQ(hw.dram_model().total_queue_cycles(), 0u);
  // A reset hierarchy must reproduce a fresh one exactly — including DRAM
  // window state and the stacked tier's contents.
  CacheHierarchy fresh(cfg, 3);
  const std::uint64_t replayed =
      hw.replay(t.refs.data(), t.classes.data(), t.refs.size());
  const std::uint64_t fresh_total =
      fresh.replay(t.refs.data(), t.classes.data(), t.refs.size());
  EXPECT_EQ(replayed, fresh_total);
  for (ClassId c = 0; c < 3; ++c) {
    EXPECT_EQ(hw.counters(c).values, fresh.counters(c).values);
    EXPECT_EQ(hw.cycles(c).cycles, fresh.cycles(c).cycles);
  }
}

TEST(TimingReset, CycleBreakdownMergeAccumulates) {
  CycleBreakdown a;
  a.bump(CycleLevel::kL1d, 10);
  a.accesses = 4;
  a.dram_cache_hits = 1;
  CycleBreakdown b;
  b.bump(CycleLevel::kL1d, 5);
  b.bump(CycleLevel::kDramQueue, 7);
  b.accesses = 2;
  b.dram_cache_misses = 3;
  a.merge(b);
  EXPECT_EQ(a.get(CycleLevel::kL1d), 15u);
  EXPECT_EQ(a.get(CycleLevel::kDramQueue), 7u);
  EXPECT_EQ(a.accesses, 6u);
  EXPECT_EQ(a.dram_cache_hits, 1u);
  EXPECT_EQ(a.dram_cache_misses, 3u);
  EXPECT_EQ(a.total(), 22u);
  EXPECT_DOUBLE_EQ(a.cycles_per_access(), 22.0 / 6.0);
}

TEST(TimingReset, CycleLevelNamesAreStable) {
  EXPECT_EQ(cycle_level_name(CycleLevel::kL1d), "l1d");
  EXPECT_EQ(cycle_level_name(CycleLevel::kDramCache), "dram_cache");
  EXPECT_EQ(cycle_level_name(CycleLevel::kDramQueue), "dram_queue");
}

// --- obs export ------------------------------------------------------------

TEST(TimingObs, PublishCycleMetricsExportsGauges) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  const HierarchyConfig cfg = timed_hw();
  const RecordedTrace t = adversarial_trace(20000, 0xB0B0ull);
  CacheHierarchy hw(cfg, 3);
  hw.replay(t.refs.data(), t.classes.data(), t.refs.size());
  hw.publish_cycle_metrics();
  auto& reg = obs::MetricsRegistry::global();
  const CycleBreakdown total = hw.total_cycles();
  EXPECT_EQ(reg.gauge_value("cachesim.cycles.total"),
            static_cast<double>(total.total()));
  EXPECT_EQ(reg.gauge_value("cachesim.cycles.l1d"),
            static_cast<double>(total.get(CycleLevel::kL1d)));
  EXPECT_EQ(reg.gauge_value("cachesim.cycles.dram_queue"),
            static_cast<double>(total.get(CycleLevel::kDramQueue)));
  EXPECT_EQ(reg.gauge_value("cachesim.dram_cache.hits"),
            static_cast<double>(total.dram_cache_hits));
  obs::set_enabled(false);
  obs::MetricsRegistry::global().reset();
}

TEST(TimingObs, InconsistentConfigBumpsWarningCounter) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  HierarchyConfig cfg = flat_hw();
  cfg.timing.dram.base_latency_cycles = 150;  // disagrees with 200
  ASSERT_EQ(cfg.timing_warnings().size(), 1u);
  CacheHierarchy hw(cfg, 1);
  EXPECT_EQ(obs::MetricsRegistry::global().counter_value(
                "cachesim.timing_warning"),
            1u);
  // The explicit base wins as the zero-contention latency.
  EXPECT_EQ(hw.access(0, {0x40, AccessType::kLoad}), 4u + 12u + 40u + 150u);
  obs::set_enabled(false);
  obs::MetricsRegistry::global().reset();
}

}  // namespace
}  // namespace stac::cachesim

// The fleet control plane end to end: a fleet of one must be bit-identical
// to the standalone OnlineController (same estimator windows, same merged
// moments, same planner memos, same selections), multi-shard merges must
// aggregate to the fleet-level condition, and the join/leave protocol must
// hand a shard off and back with zero event loss and quarantining restores.
#include "fleet/fleet_coordinator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/stac_manager.hpp"
#include "serve/online_controller.hpp"

namespace stac::fleet {
namespace {

using core::StacManager;
using core::StacOptions;
using profiler::RuntimeCondition;

StacOptions tiny_options() {
  StacOptions opts;
  opts.profile_budget = 6;
  opts.profiler.target_completions = 250;
  opts.profiler.warmup_completions = 30;
  opts.profiler.max_windows = 1;
  opts.profiler.accesses_per_sample = 600;
  opts.model.deep_forest.mgs.window_sizes = {5};
  opts.model.deep_forest.mgs.estimators = 6;
  opts.model.deep_forest.cascade.levels = 1;
  opts.model.deep_forest.cascade.estimators = 10;
  opts.predictor.sim_queries = 1500;
  opts.explorer.grid = {0.0, 2.0, 6.0};
  return opts;
}

RuntimeCondition base_condition() {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKnn;
  c.collocated = wl::Benchmark::kBfs;
  c.util_primary = 0.8;
  c.util_collocated = 0.8;
  c.timeout_primary = 1.0;
  c.timeout_collocated = 1.0;
  c.seed = 12;
  return c;
}

FleetConfig fleet_config(std::size_t shards) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.shard.servers = 2;
  cfg.planner.base_condition = base_condition();
  cfg.planner.explorer = tiny_options().explorer;
  return cfg;
}

serve::ControllerConfig controller_config() {
  serve::ControllerConfig cfg;
  cfg.base_condition = base_condition();
  cfg.explorer = tiny_options().explorer;
  cfg.servers = 2;
  return cfg;
}

serve::QueryEvent make_event(serve::EventKind kind, std::uint16_t w, double t,
                             double service = 1.0, bool boosted = false) {
  serve::QueryEvent e;
  e.kind = kind;
  e.workload = w;
  e.time = t;
  e.service = service;
  e.queue_delay = kind == serve::EventKind::kCompletion ? 0.1 : 0.0;
  e.boosted = boosted;
  return e;
}

/// Stationary utilization-0.8 traffic (1.6 arrivals/s, 2 servers, unit
/// service) — the same deterministic feed the controller suite uses.
/// `gap_scale` > 1 thins the stream (a shard carrying a fraction of the
/// workload's total rate).
void feed_stationary(serve::ArrivalIngest& ring, double t0, double t1,
                     double gap_scale = 1.0) {
  const double gap = 0.625 * gap_scale;
  for (std::uint16_t w = 0; w < 2; ++w) {
    for (double t = t0; t < t1; t += gap) {
      ASSERT_TRUE(
          ring.try_push(make_event(serve::EventKind::kArrival, w, t)));
      ASSERT_TRUE(
          ring.try_push(make_event(serve::EventKind::kCompletion, w, t)));
    }
  }
}

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Calibration is the expensive part; share one manager across the suite.
class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mgr_ = new StacManager(tiny_options());
    mgr_->calibrate(wl::Benchmark::kKnn, wl::Benchmark::kBfs);
  }
  static void TearDownTestSuite() {
    delete mgr_;
    mgr_ = nullptr;
  }

  static StacManager* mgr_;
};

StacManager* FleetTest::mgr_ = nullptr;

TEST_F(FleetTest, FleetOfOneMatchesStandaloneControllerBitExactly) {
  // Two control planes, one traffic history: the standalone controller and
  // a 1-shard fleet, each with its own identically-built serving bundle,
  // fed the same deterministic event stream.  Every epoch's selection must
  // agree to the bit.
  serve::ArrivalIngest ring(1 << 12);
  serve::ModelSnapshot<serve::ServingModel> snap_solo(
      serve::build_serving_model(*mgr_, tiny_options(), 1));
  serve::OnlineController solo(ring, snap_solo, controller_config());

  serve::ModelSnapshot<serve::ServingModel> snap_fleet(
      serve::build_serving_model(*mgr_, tiny_options(), 1));
  FleetCoordinator fleet(snap_fleet, fleet_config(1));
  ASSERT_EQ(fleet.shard_count(), 1u);

  for (int epoch = 1; epoch <= 4; ++epoch) {
    const double t0 = 60.0 * (epoch - 1), t1 = 60.0 * epoch;
    feed_stationary(ring, t0, t1);
    feed_stationary(fleet.shard(0).ingest(), t0, t1);
    const serve::EpochReport r_solo = solo.run_epoch(t1);
    const FleetEpochReport r_fleet = fleet.run_epoch(t1);

    ASSERT_EQ(r_fleet.warm, r_solo.warm) << "epoch " << epoch;
    ASSERT_EQ(r_fleet.replanned, r_solo.replanned) << "epoch " << epoch;
    // Identical planned condition (quantized utilizations bitwise equal).
    EXPECT_TRUE(bit_equal(r_fleet.planned_condition.util_primary,
                          r_solo.planned_condition.util_primary));
    EXPECT_TRUE(bit_equal(r_fleet.planned_condition.util_collocated,
                          r_solo.planned_condition.util_collocated));
    // Identical memo behaviour: same cells simulated vs reused per epoch.
    EXPECT_EQ(r_fleet.cells_simulated, r_solo.cells_simulated);
    EXPECT_EQ(r_fleet.cells_reused, r_solo.cells_reused);
    // The identity itself: bit-identical applied timeout vectors.
    EXPECT_TRUE(bit_equal(r_fleet.timeout_primary, r_solo.timeout_primary));
    EXPECT_TRUE(
        bit_equal(r_fleet.timeout_collocated, r_solo.timeout_collocated));
    EXPECT_TRUE(bit_equal(fleet.shard(0).timeout(0), solo.timeout(0)));
    EXPECT_TRUE(bit_equal(fleet.shard(0).timeout(1), solo.timeout(1)));
  }
  EXPECT_EQ(fleet.totals().replans, solo.totals().replans);
  EXPECT_GT(fleet.totals().replans, 0u);
}

TEST_F(FleetTest, TwoShardSplitAggregatesToTheFleetCondition) {
  // The same offered load split across two shards (each carries half the
  // rate against half the fleet's capacity) must merge to the same fleet
  // utilization a single shard carrying it all would see.
  serve::ModelSnapshot<serve::ServingModel> snap(
      serve::build_serving_model(*mgr_, tiny_options(), 1));
  FleetCoordinator fleet(snap, fleet_config(2));

  // Each shard gets a thinned stream: gap 1.25s -> 0.8 arrivals/s/shard,
  // 1.6 aggregate against 4 servers of unit service = utilization 0.4...
  // per-workload utilization = rate x service / servers_total = 0.4.
  feed_stationary(fleet.shard(0).ingest(), 0.0, 60.0, 2.0);
  feed_stationary(fleet.shard(1).ingest(), 0.0, 60.0, 2.0);
  const FleetEpochReport r = fleet.run_epoch(60.0);
  ASSERT_TRUE(r.warm);
  EXPECT_EQ(r.active_shards, 2u);

  // Pooled counts are exact sums of the two shards' windows: 24 in-window
  // completions per shard per workload (gap 1.25s, 30s window).
  EXPECT_EQ(r.merged_primary.completions, 48u);
  EXPECT_NEAR(r.merged_primary.arrival_rate, 1.6, 0.05);
  EXPECT_NEAR(r.merged_primary.utilization, 0.4, 0.02);
  EXPECT_NEAR(r.merged_collocated.utilization, 0.4, 0.02);
  // The planned condition snapped onto the profiled axis from the merged
  // utilization (clamped at util_lo = 0.25 grid, quantum 0.05).
  EXPECT_NEAR(r.planned_condition.util_primary, 0.4, 0.051);
  ASSERT_TRUE(r.replanned);
  // Both shards applied the same published plan.
  EXPECT_TRUE(bit_equal(fleet.shard(0).timeout(0), fleet.shard(1).timeout(0)));
  EXPECT_TRUE(bit_equal(fleet.shard(0).timeout(1), fleet.shard(1).timeout(1)));
  EXPECT_EQ(fleet.totals().plan_pushes, 2u);
}

TEST_F(FleetTest, LeaveDrainsCheckpointsAndRenormalizesCapacity) {
  serve::ModelSnapshot<serve::ServingModel> snap(
      serve::build_serving_model(*mgr_, tiny_options(), 1));
  FleetCoordinator fleet(snap, fleet_config(2));

  feed_stationary(fleet.shard(0).ingest(), 0.0, 60.0, 2.0);
  feed_stationary(fleet.shard(1).ingest(), 0.0, 60.0, 2.0);
  ASSERT_TRUE(fleet.run_epoch(60.0).replanned);

  // Events published after the last epoch but before the leave: the final
  // drain inside leave_shard must fold them in — zero loss.
  feed_stationary(fleet.shard(1).ingest(), 60.0, 90.0, 2.0);
  const std::uint64_t pushed = fleet.shard(1).ingest().pushed();
  const serve::ControllerCheckpoint ckpt = fleet.leave_shard(1, 90.0);
  EXPECT_EQ(fleet.shard(1).ingest().popped(), pushed);
  EXPECT_EQ(fleet.shard(1).ingest().dropped(), 0u);
  EXPECT_FALSE(fleet.shard(1).active());
  EXPECT_EQ(fleet.active_shards(), 1u);
  ASSERT_EQ(ckpt.workloads.size(), 2u);
  // The checkpoint carries the shard's full lifetime accounting (including
  // the final drain) and its applied vector.
  EXPECT_EQ(ckpt.workloads[0].completions +
                ckpt.workloads[1].completions +
                ckpt.workloads[0].arrivals + ckpt.workloads[1].arrivals,
            pushed);
  EXPECT_TRUE(bit_equal(ckpt.workloads[0].timeout, fleet.shard(0).timeout(0)));

  // Next epoch plans on the remaining capacity: same per-shard offered
  // load, half the servers — the merged utilization renormalizes (one
  // shard at 0.8 arrivals/s over 2 servers = 0.4, unchanged per-capacity).
  feed_stationary(fleet.shard(0).ingest(), 60.0, 120.0, 2.0);
  const FleetEpochReport after = fleet.run_epoch(120.0);
  EXPECT_EQ(after.active_shards, 1u);
  EXPECT_NEAR(after.merged_primary.utilization, 0.4, 0.05);
  EXPECT_EQ(fleet.totals().leaves, 1u);

  // Rejoin from the hand-off checkpoint: estimator continuity restored.
  const serve::RecoveryReport rec = fleet.rejoin_shard(1, ckpt, 120.0);
  EXPECT_TRUE(rec.restored);
  EXPECT_FALSE(rec.quarantined);
  EXPECT_TRUE(fleet.shard(1).active());
  EXPECT_EQ(fleet.active_shards(), 2u);
  EXPECT_EQ(fleet.totals().joins, 1u);
  // The rejoined shard serves the currently published plan immediately.
  EXPECT_TRUE(bit_equal(fleet.shard(1).timeout(0), fleet.shard(0).timeout(0)));
  EXPECT_TRUE(bit_equal(fleet.shard(1).timeout(1), fleet.shard(0).timeout(1)));
}

TEST_F(FleetTest, RejoinQuarantinesMalformedCheckpointAndJoinsCold) {
  serve::ModelSnapshot<serve::ServingModel> snap(
      serve::build_serving_model(*mgr_, tiny_options(), 1));
  FleetCoordinator fleet(snap, fleet_config(2));
  feed_stationary(fleet.shard(0).ingest(), 0.0, 60.0);
  feed_stationary(fleet.shard(1).ingest(), 0.0, 60.0);
  ASSERT_TRUE(fleet.run_epoch(60.0).replanned);
  (void)fleet.leave_shard(1, 60.0);

  // A checkpoint from a different (3-workload) fleet generation: the shape
  // does not match the live pair.  Quarantine — but the shard still
  // rejoins, cold, serving the current fleet plan.
  serve::ControllerCheckpoint stale;
  stale.workloads.resize(3);
  for (auto& w : stale.workloads) w.timeout = 0.5;
  const serve::RecoveryReport rec = fleet.rejoin_shard(1, stale, 61.0);
  EXPECT_FALSE(rec.restored);
  EXPECT_TRUE(rec.quarantined);
  EXPECT_FALSE(rec.reason.empty());
  EXPECT_TRUE(fleet.shard(1).active());
  EXPECT_EQ(fleet.totals().join_quarantines, 1u);
  EXPECT_EQ(fleet.shard(1).totals().restore_quarantines, 1u);
  // Not the stale checkpoint's 0.5 — the published plan.
  EXPECT_TRUE(bit_equal(fleet.shard(1).timeout(0), fleet.shard(0).timeout(0)));

  // A non-finite timeout quarantines the same way.
  (void)fleet.leave_shard(1, 62.0);
  serve::ControllerCheckpoint nan_ckpt;
  nan_ckpt.workloads.resize(2);
  nan_ckpt.workloads[0].timeout = std::numeric_limits<double>::quiet_NaN();
  nan_ckpt.workloads[1].timeout = 1.0;
  const serve::RecoveryReport rec2 = fleet.rejoin_shard(1, nan_ckpt, 63.0);
  EXPECT_TRUE(rec2.quarantined);
  EXPECT_EQ(fleet.totals().join_quarantines, 2u);
  // The NaN never reached the applied vector.
  EXPECT_TRUE(std::isfinite(fleet.shard(1).timeout(0)));
}

TEST_F(FleetTest, ColdFleetHoldsInitialVectorAndNeverPublishesNaN) {
  serve::ModelSnapshot<serve::ServingModel> snap;  // no model published
  FleetCoordinator fleet(snap, fleet_config(2));
  const FleetEpochReport cold = fleet.run_epoch(1.0);
  EXPECT_FALSE(cold.warm);
  EXPECT_FALSE(cold.replanned);
  EXPECT_DOUBLE_EQ(cold.timeout_primary, 1.0);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_TRUE(std::isfinite(fleet.shard(s).timeout(0)));
    EXPECT_TRUE(std::isfinite(fleet.shard(s).timeout(1)));
  }
  // Warm traffic but still no model: hold, not an error.
  feed_stationary(fleet.shard(0).ingest(), 0.0, 60.0);
  feed_stationary(fleet.shard(1).ingest(), 0.0, 60.0);
  const FleetEpochReport held = fleet.run_epoch(60.0);
  EXPECT_TRUE(held.warm);
  EXPECT_TRUE(held.model_unavailable_hold);
  EXPECT_FALSE(held.replanned);
  EXPECT_EQ(fleet.totals().model_unavailable_holds, 1u);
}

TEST_F(FleetTest, LibraryMergeDeduplicatesAcrossNodes) {
  serve::ModelSnapshot<serve::ServingModel> snap(
      serve::build_serving_model(*mgr_, tiny_options(), 1));
  FleetCoordinator fleet(snap, fleet_config(1));

  // "Node A" contributes the manager's calibration profiles.
  const core::ProfileLibrary& node_a = mgr_->library();
  const auto first = fleet.merge_library(node_a);
  EXPECT_EQ(first.added, node_a.size());
  EXPECT_EQ(first.duplicates, 0u);

  // "Node B" re-offers the same profiles: all duplicates, none added.
  const auto second = fleet.merge_library(node_a);
  EXPECT_EQ(second.added, 0u);
  EXPECT_EQ(second.duplicates, node_a.size());
  EXPECT_EQ(fleet.library().size(), node_a.size());
  EXPECT_EQ(fleet.totals().library_profiles_merged, node_a.size());
}

TEST_F(FleetTest, MergeRoutesDeltaThroughRefitExecutor) {
  // Cross-node calibration sharing end to end: a merge_library with new
  // profiles must be forwarded to the shared RefitExecutor, which refits
  // and publishes a fresh bundle — the fleet epoch itself never fits.
  serve::ModelSnapshot<serve::ServingModel> snap(
      serve::build_serving_model(*mgr_, tiny_options(), 1));
  serve::RefitExecutorConfig rcfg;
  rcfg.model = tiny_options().model;
  rcfg.predictor = tiny_options().predictor;
  serve::RefitExecutor refits(mgr_->profiler(), snap, mgr_->library(), rcfg,
                              /*first_version=*/2);
  refits.start();

  FleetConfig cfg = fleet_config(1);
  cfg.refit = &refits;
  FleetCoordinator fleet(snap, cfg);

  // "Node B" offers profiles the coordinator has not seen: perturb the
  // conditions so dedup-by-condition counts them as new.
  core::ProfileLibrary node_b;
  for (const auto& p : mgr_->library().profiles()) {
    profiler::Profile q = p;
    q.condition.timeout_primary += 1e-6;
    node_b.add(std::move(q));
  }
  const std::uint64_t version_before = snap.version();
  const auto stats = fleet.merge_library(node_b);
  EXPECT_EQ(stats.added, node_b.size());
  EXPECT_EQ(fleet.totals().refit_requests, 1u);

  // The executor publishes in the background; wait for its bundle.
  const double deadline = 60.0;
  const std::uint64_t ticket = refits.request_refit(core::ProfileLibrary{});
  ASSERT_TRUE(refits.wait(ticket, deadline));
  refits.stop();
  EXPECT_GE(refits.stats().completed, 1u);
  EXPECT_GT(snap.version(), version_before);
  {
    const auto guard = snap.acquire();
    ASSERT_TRUE(static_cast<bool>(guard));
    EXPECT_GE(guard->version, 2u);
    EXPECT_TRUE(guard->primary_trained());
  }
  // The executor's authoritative library absorbed node B's delta.
  EXPECT_EQ(refits.library_size(), mgr_->library().size() + node_b.size());

  // A duplicate offer adds nothing and must NOT trigger another refit.
  const auto dup = fleet.merge_library(node_b);
  EXPECT_EQ(dup.added, 0u);
  EXPECT_EQ(fleet.totals().refit_requests, 1u);
}

TEST_F(FleetTest, AsyncRefreshConvergesANodeThatMissedThePush) {
  serve::ModelSnapshot<serve::ServingModel> snap(
      serve::build_serving_model(*mgr_, tiny_options(), 1));
  FleetCoordinator fleet(snap, fleet_config(2));
  feed_stationary(fleet.shard(0).ingest(), 0.0, 60.0);
  feed_stationary(fleet.shard(1).ingest(), 0.0, 60.0);
  ASSERT_TRUE(fleet.run_epoch(60.0).replanned);

  // A node with the plan already applied sees nothing new...
  EXPECT_FALSE(fleet.shard(0).refresh_plan(fleet.plans()));
  // ...and a stale node (simulated: fresh shard state via leave + cold
  // rejoin) pulls the current plan from the RCU snapshot on its own.
  const auto plan_guard = fleet.plans().acquire();
  ASSERT_TRUE(static_cast<bool>(plan_guard));
  EXPECT_EQ(plan_guard->epoch, 1u);
  EXPECT_TRUE(bit_equal(plan_guard->timeout_primary, fleet.shard(0).timeout(0)));
}

}  // namespace
}  // namespace stac::fleet

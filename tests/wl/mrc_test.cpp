#include "wl/mrc.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::wl {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

TEST(MissRatioCurve, ValidationRules) {
  EXPECT_NO_THROW(MissRatioCurve({1.0, 0.5, 0.2}));
  EXPECT_THROW(MissRatioCurve({0.9, 0.5}), ContractViolation);   // [0] != 1
  EXPECT_THROW(MissRatioCurve({1.0, 0.5, 0.6}), ContractViolation);  // rises
  EXPECT_THROW(MissRatioCurve({1.0}), ContractViolation);        // too short
  EXPECT_THROW(MissRatioCurve({1.0, -0.1}), ContractViolation);  // range
}

TEST(MissRatioCurve, InterpolationAndClamping) {
  const MissRatioCurve mrc({1.0, 0.6, 0.2});
  EXPECT_DOUBLE_EQ(mrc.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(mrc.at(1.0), 0.6);
  EXPECT_DOUBLE_EQ(mrc.at(0.5), 0.8);
  EXPECT_DOUBLE_EQ(mrc.at(1.5), 0.4);
  EXPECT_DOUBLE_EQ(mrc.at(-1.0), 1.0);   // clamps low
  EXPECT_DOUBLE_EQ(mrc.at(99.0), 0.2);   // clamps high
}

TEST(MissRatioCurve, MarginalGain) {
  const MissRatioCurve mrc({1.0, 0.6, 0.5});
  EXPECT_DOUBLE_EQ(mrc.marginal_gain(0), 0.4);
  EXPECT_DOUBLE_EQ(mrc.marginal_gain(1), 0.1);
  EXPECT_DOUBLE_EQ(mrc.marginal_gain(5), 0.0);
}

TEST(MissRatioCurve, FromWorkingSetsHitsWhenCapacityCovers) {
  const MissRatioCurve::Component comps[] = {{1.0, 2.0 * kMB}};
  const MissRatioCurve mrc =
      MissRatioCurve::from_working_sets(comps, 0.0, 4, 2.0 * kMB);
  // 1 way = 2 MB covers the whole 2 MB working set: no misses.
  EXPECT_DOUBLE_EQ(mrc.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(mrc.at(4.0), 0.0);
}

TEST(MissRatioCurve, FromWorkingSetsPartialCoverage) {
  const MissRatioCurve::Component comps[] = {{1.0, 8.0 * kMB}};
  const MissRatioCurve mrc =
      MissRatioCurve::from_working_sets(comps, 0.0, 4, 2.0 * kMB);
  EXPECT_NEAR(mrc.at(1.0), 0.75, 1e-12);  // 2/8 covered
  EXPECT_NEAR(mrc.at(2.0), 0.50, 1e-12);
  EXPECT_NEAR(mrc.at(4.0), 0.0, 1e-12);
}

TEST(MissRatioCurve, FloorBoundsCurveFromBelow) {
  const MissRatioCurve::Component comps[] = {{1.0, 1.0 * kMB}};
  const MissRatioCurve mrc =
      MissRatioCurve::from_working_sets(comps, 0.3, 4, 2.0 * kMB);
  EXPECT_NEAR(mrc.at(4.0), 0.3, 1e-12);  // streaming floor remains
  EXPECT_DOUBLE_EQ(mrc.at(0.0), 1.0);
}

TEST(MissRatioCurve, FromWorkingSetsValidatesFractions) {
  const MissRatioCurve::Component bad[] = {{0.5, kMB}};
  EXPECT_THROW(MissRatioCurve::from_working_sets(bad, 0.0, 4, kMB),
               ContractViolation);
}

TEST(MissRatioCurve, ExponentialShape) {
  const MissRatioCurve mrc = MissRatioCurve::exponential(0.1, 2.0, 10);
  EXPECT_DOUBLE_EQ(mrc.at(0.0), 1.0);
  EXPECT_GT(mrc.at(1.0), mrc.at(5.0));
  EXPECT_NEAR(mrc.at(10.0), 0.1, 0.01);
}

// Property: from_working_sets is non-increasing for any mixture.
class MrcMonotone : public ::testing::TestWithParam<double> {};

TEST_P(MrcMonotone, NonIncreasing) {
  const double floor = GetParam();
  const MissRatioCurve::Component comps[] = {{0.5, 1.5 * kMB},
                                             {0.5, 9.0 * kMB}};
  const MissRatioCurve mrc =
      MissRatioCurve::from_working_sets(comps, floor, 20, 2.0 * kMB);
  for (std::size_t w = 1; w <= 20; ++w)
    EXPECT_LE(mrc.at(static_cast<double>(w)),
              mrc.at(static_cast<double>(w - 1)) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Floors, MrcMonotone,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6));

}  // namespace
}  // namespace stac::wl

#include "wl/workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/stats.hpp"
#include "wl/benchmark_suite.hpp"

namespace stac::wl {
namespace {

constexpr double kWayBytes = 2.0 * 1024 * 1024;

TEST(BenchmarkSuite, EightBenchmarksWithUniqueIds) {
  EXPECT_EQ(all_benchmarks().size(), kBenchmarkCount);
  std::set<std::string_view> ids;
  for (Benchmark b : all_benchmarks()) ids.insert(benchmark_id(b));
  EXPECT_EQ(ids.size(), kBenchmarkCount);
}

TEST(BenchmarkSuite, RoundTripFromId) {
  for (Benchmark b : all_benchmarks())
    EXPECT_EQ(benchmark_from_id(benchmark_id(b)), b);
  EXPECT_FALSE(benchmark_from_id("nonexistent").has_value());
}

TEST(BenchmarkSuite, PaperBaselineServiceTimes) {
  EXPECT_DOUBLE_EQ(benchmark_spec(Benchmark::kSocial).base_service_time,
                   7.5e-3);
  EXPECT_DOUBLE_EQ(benchmark_spec(Benchmark::kSpkmeans).base_service_time,
                   81.0);
  EXPECT_DOUBLE_EQ(benchmark_spec(Benchmark::kSpstream).base_service_time,
                   1.0);
  EXPECT_DOUBLE_EQ(benchmark_spec(Benchmark::kRedis).base_service_time,
                   1.0e-3);
}

TEST(BenchmarkSuite, SocialTopologyFlags) {
  const WorkloadSpec s = benchmark_spec(Benchmark::kSocial);
  EXPECT_TRUE(s.use_microservice_graph);
  EXPECT_EQ(s.threads, 36u);
  EXPECT_EQ(s.containers, 30u);
}

TEST(BenchmarkSuite, RedisUsesYcsbShape) {
  const WorkloadSpec s = benchmark_spec(Benchmark::kRedis);
  EXPECT_EQ(s.stream_kind, StreamKind::kZipf);
  EXPECT_EQ(s.zipf_records, 200'000u);
  EXPECT_EQ(s.zipf_record_bytes, 1024u);
}

TEST(BenchmarkSuite, CachePatternsMatchTableOne) {
  // Kmeans/KNN: high reuse, low misses -> low streaming fraction, small
  // dominant working set.  Redis/Spstream: high misses.
  const auto miss_at_baseline = [](Benchmark b) {
    const WorkloadModel m = make_model(b, 20, kWayBytes, 1);
    return m.miss_ratio(1.0);
  };
  EXPECT_LT(miss_at_baseline(Benchmark::kKmeans),
            miss_at_baseline(Benchmark::kRedis));
  EXPECT_LT(miss_at_baseline(Benchmark::kKnn),
            miss_at_baseline(Benchmark::kSpstream));
  EXPECT_LT(miss_at_baseline(Benchmark::kKnn),
            miss_at_baseline(Benchmark::kJacobi));
}

class WorkloadModelSweep : public ::testing::TestWithParam<Benchmark> {};

TEST_P(WorkloadModelSweep, CalibrationAnchorsBaseline) {
  const WorkloadModel m = make_model(GetParam(), 20, kWayBytes, 1);
  EXPECT_NEAR(m.baseline_service_time(), m.spec().base_service_time,
              1e-9 * m.spec().base_service_time);
}

TEST_P(WorkloadModelSweep, MoreWaysNeverSlower) {
  const WorkloadModel m = make_model(GetParam(), 20, kWayBytes, 1);
  double prev = m.mean_service_time(0.5);
  for (double w = 1.0; w <= 20.0; w += 0.5) {
    const double cur = m.mean_service_time(w);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST_P(WorkloadModelSweep, SpeedupAboveOneWithBoost) {
  const WorkloadModel m = make_model(GetParam(), 20, kWayBytes, 1);
  EXPECT_GE(m.speedup(3.0), 1.0);
  EXPECT_DOUBLE_EQ(m.speedup(1.0), 1.0);
}

TEST_P(WorkloadModelSweep, MissRatePositiveAndDecreasing) {
  const WorkloadModel m = make_model(GetParam(), 20, kWayBytes, 1);
  EXPECT_GT(m.miss_rate(1.0), 0.0);
  EXPECT_GE(m.miss_rate(1.0), m.miss_rate(10.0) * 0.99);
}

TEST_P(WorkloadModelSweep, DemandSamplesHaveMeanOne) {
  const WorkloadModel m = make_model(GetParam(), 20, kWayBytes, 1);
  Rng rng(3);
  StreamingStats st;
  for (int i = 0; i < 30000; ++i) st.add(m.sample_demand(rng));
  EXPECT_NEAR(st.mean(), 1.0, 0.03);
}

TEST_P(WorkloadModelSweep, StreamFactoryProducesNamespacedAddresses) {
  const WorkloadModel m = make_model(GetParam(), 20, kWayBytes, 1);
  auto stream = m.make_stream(2, 42);
  for (int i = 0; i < 1000; ++i) {
    const auto a = stream->next();
    EXPECT_GE(a.address, kClassAddressStride * 3);
    EXPECT_LT(a.address, kClassAddressStride * 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadModelSweep,
    ::testing::ValuesIn(all_benchmarks()),
    [](const ::testing::TestParamInfo<Benchmark>& param_info) {
      return std::string(benchmark_id(param_info.param));
    });

TEST(WorkloadModel, CacheInsensitiveWorkloadHasFlatServiceTime) {
  WorkloadSpec spec = benchmark_spec(Benchmark::kKmeans);
  spec.mem_fraction = 0.0;
  const WorkloadModel m(spec, 20, kWayBytes, 1);
  EXPECT_DOUBLE_EQ(m.mean_service_time(1.0), m.mean_service_time(20.0));
  EXPECT_DOUBLE_EQ(m.miss_rate(5.0), 0.0);
}

}  // namespace
}  // namespace stac::wl

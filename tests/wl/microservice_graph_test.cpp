#include "wl/microservice_graph.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace stac::wl {
namespace {

TEST(MicroserviceGraph, PaperTopology) {
  const auto g = MicroserviceGraph::social_network();
  EXPECT_EQ(g.service_count(), 36u);       // 36 microservices
  EXPECT_EQ(g.container_count(), 30u);     // in 30 Docker containers
  EXPECT_EQ(g.layer_count(), 6u);
}

TEST(MicroserviceGraph, ContainersCoverAllServices) {
  const auto g = MicroserviceGraph::social_network();
  for (const auto& svc : g.services()) EXPECT_LT(svc.container, 30u);
}

TEST(MicroserviceGraph, ExpectedDemandNormalizedToOne) {
  const auto g = MicroserviceGraph::social_network();
  EXPECT_NEAR(g.expected_demand(), 1.0, 1e-9);
}

TEST(MicroserviceGraph, SampledDemandMeanNearOne) {
  const auto g = MicroserviceGraph::social_network();
  Rng rng(11);
  StreamingStats st;
  for (int i = 0; i < 40000; ++i) st.add(g.sample_demand(rng));
  EXPECT_NEAR(st.mean(), 1.0, 0.02);
}

TEST(MicroserviceGraph, FanOutMakesDemandHeavierThanExponential) {
  // Max-of-exponentials per layer: CV below 1 (sums) but long right tail
  // relative to a normal — p99/mean well above 2 would hold for exp;
  // check the tail is meaningfully heavy while mean stays 1.
  const auto g = MicroserviceGraph::social_network();
  Rng rng(13);
  SampleStats st;
  for (int i = 0; i < 40000; ++i) st.add(g.sample_demand(rng));
  EXPECT_GT(st.percentile(0.99), 1.8);
  EXPECT_GT(st.percentile(0.95), 1.5);
  EXPECT_LT(st.percentile(0.5), 1.0);  // right-skewed: median < mean
}

TEST(MicroserviceGraph, SamplesArePositive) {
  const auto g = MicroserviceGraph::social_network();
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(g.sample_demand(rng), 0.0);
}

}  // namespace
}  // namespace stac::wl

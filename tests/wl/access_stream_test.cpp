#include "wl/access_stream.hpp"

#include <gtest/gtest.h>

#include <map>

namespace stac::wl {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

TEST(SyntheticStream, AddressesStayInClassRegion) {
  ReuseProfile p;
  p.components = {{0.7, 1.0 * kMB}};
  p.streaming_fraction = 0.3;
  const std::uint64_t base = kClassAddressStride * 3;
  SyntheticStream stream(p, base, 1);
  for (int i = 0; i < 20000; ++i) {
    const auto a = stream.next();
    EXPECT_GE(a.address, base);
    EXPECT_LT(a.address, base + kClassAddressStride);
  }
}

TEST(SyntheticStream, StoreFractionRespected) {
  ReuseProfile p;
  p.components = {{1.0, 1.0 * kMB}};
  p.store_fraction = 0.4;
  p.ifetch_per_access = 0.0;
  SyntheticStream stream(p, kClassAddressStride, 2);
  int stores = 0, total = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto a = stream.next();
    if (a.type == cachesim::AccessType::kStore) ++stores;
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(stores) / total, 0.4, 0.02);
}

TEST(SyntheticStream, IfetchRatioRespected) {
  ReuseProfile p;
  p.components = {{1.0, 1.0 * kMB}};
  p.ifetch_per_access = 0.5;  // one ifetch per two data accesses
  SyntheticStream stream(p, kClassAddressStride, 3);
  int ifetch = 0, total = 0;
  for (int i = 0; i < 30000; ++i) {
    if (stream.next().type == cachesim::AccessType::kIfetch) ++ifetch;
    ++total;
  }
  // ifetch / data = 0.5 -> ifetch / total = 1/3.
  EXPECT_NEAR(static_cast<double>(ifetch) / total, 1.0 / 3.0, 0.02);
}

TEST(SyntheticStream, StreamingNeverRevisitsSoon) {
  ReuseProfile p;
  p.streaming_fraction = 1.0;
  p.ifetch_per_access = 0.0;
  SyntheticStream stream(p, 0, 4);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 10000; ++i) ++seen[stream.next().address / 64];
  for (const auto& [line, count] : seen) EXPECT_EQ(count, 1) << line;
}

TEST(ZipfStream, PopularRecordsDominarte) {
  ZipfStream stream(1000, 1024, 0.99, 0.0, 0, 5);
  std::map<std::uint64_t, int> record_hits;
  for (int i = 0; i < 50000; ++i)
    ++record_hits[stream.next().address / 1024];
  // Record 0 is the most popular.
  int max_hits = 0;
  for (const auto& [rec, hits] : record_hits) max_hits = std::max(max_hits, hits);
  EXPECT_EQ(record_hits[0], max_hits);
  EXPECT_GT(record_hits[0], 50000 / 1000 * 5);
}

TEST(ZipfStream, TouchesWithinRecordBounds) {
  ZipfStream stream(10, 1024, 0.5, 0.5, 1 << 20, 6);
  for (int i = 0; i < 5000; ++i) {
    const auto a = stream.next();
    EXPECT_GE(a.address, 1u << 20);
    EXPECT_LT(a.address, (1u << 20) + 10 * 1024);
  }
}

TEST(StridedStream, CyclicSweep) {
  StridedStream stream(256, 64, 0.0, 0, 7);
  // Addresses 0, 64, 128, 192, then wrap.
  EXPECT_EQ(stream.next().address, 0u);
  EXPECT_EQ(stream.next().address, 64u);
  EXPECT_EQ(stream.next().address, 128u);
  EXPECT_EQ(stream.next().address, 192u);
  EXPECT_EQ(stream.next().address, 0u);
}

TEST(StridedStream, DeterministicForSeed) {
  StridedStream a(1024, 64, 0.5, 0, 9);
  StridedStream b(1024, 64, 0.5, 0, 9);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    const auto y = b.next();
    EXPECT_EQ(x.address, y.address);
    EXPECT_EQ(static_cast<int>(x.type), static_cast<int>(y.type));
  }
}

}  // namespace
}  // namespace stac::wl

#include "wl/reuse_profile.hpp"

#include <gtest/gtest.h>

namespace stac::wl {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

ReuseProfile sample_profile() {
  ReuseProfile p;
  p.components = {{0.6, 2.0 * kMB}, {0.2, 16.0 * kMB}};
  p.streaming_fraction = 0.2;
  return p;
}

TEST(ReuseProfile, Validity) {
  EXPECT_TRUE(sample_profile().valid());
  ReuseProfile bad = sample_profile();
  bad.streaming_fraction = 0.5;  // fractions no longer sum to 1
  EXPECT_FALSE(bad.valid());
  ReuseProfile empty;
  EXPECT_FALSE(empty.valid());
  ReuseProfile neg = sample_profile();
  neg.components[0].fraction = -0.1;
  EXPECT_FALSE(neg.valid());
  ReuseProfile bad_store = sample_profile();
  bad_store.store_fraction = 1.5;
  EXPECT_FALSE(bad_store.valid());
}

TEST(ReuseProfile, MrcFloorEqualsStreamingFraction) {
  const MissRatioCurve mrc = sample_profile().mrc(20, 2.0 * kMB);
  // With enough ways everything reusable hits; only streaming misses.
  EXPECT_NEAR(mrc.at(20.0), 0.2, 1e-9);
  EXPECT_DOUBLE_EQ(mrc.at(0.0), 1.0);
}

TEST(ReuseProfile, PureStreamingIsCapacityInsensitive) {
  ReuseProfile p;
  p.streaming_fraction = 1.0;
  ASSERT_TRUE(p.valid());
  const MissRatioCurve mrc = p.mrc(8, 2.0 * kMB);
  EXPECT_DOUBLE_EQ(mrc.at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(mrc.at(8.0), 1.0);
}

TEST(ReuseProfile, FootprintIsLargestRegion) {
  EXPECT_DOUBLE_EQ(sample_profile().footprint_bytes(), 16.0 * kMB);
  ReuseProfile tiny;
  tiny.streaming_fraction = 1.0;
  tiny.code_bytes = 128 * 1024;
  EXPECT_DOUBLE_EQ(tiny.footprint_bytes(), 128.0 * 1024);
}

TEST(ReuseProfile, MrcReflectsComponentCoverage) {
  const MissRatioCurve mrc = sample_profile().mrc(20, 2.0 * kMB);
  // 1 way (2MB) covers component 1 fully: reuse misses only from comp 2.
  // miss = 0.2 + 0.8 * (0.25 * (1 - 2/16)) = 0.2 + 0.8*0.25*0.875
  EXPECT_NEAR(mrc.at(1.0), 0.2 + 0.8 * (0.25 * 0.875), 1e-9);
}

}  // namespace
}  // namespace stac::wl

#include "wl/measure.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::wl {
namespace {

// A small hierarchy keeps cachesim-backed tests quick: 8 ways x 64 KB.
cachesim::HierarchyConfig small_hw() {
  cachesim::HierarchyConfig c;
  c.l1d = {4 * 1024, 8, 64, 4};
  c.l1i = {4 * 1024, 8, 64, 4};
  c.l2 = {16 * 1024, 16, 64, 12};
  c.llc = {512 * 1024, 8, 64, 40};
  return c;
}

// Workload scaled to the small hierarchy (way = 64 KB).
WorkloadSpec small_workload() {
  WorkloadSpec s;
  s.id = "synthetic";
  s.profile.components = {{0.6, 48.0 * 1024}, {0.2, 480.0 * 1024}};
  s.profile.streaming_fraction = 0.2;
  s.profile.ifetch_per_access = 0.1;
  s.profile.code_bytes = 2048;
  s.base_service_time = 1.0;
  s.mem_fraction = 0.5;
  return s;
}

TEST(Measure, MissRatioDecreasesWithWays) {
  const auto hw = small_hw();
  const WorkloadModel m(small_workload(), hw.llc.ways,
                        static_cast<double>(hw.llc_way_bytes()), 1);
  const auto points =
      measure_mrc(m, hw, {1, 2, 4, 8}, 20000, 60000, 7);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LE(points[i].llc_miss_ratio, points[i - 1].llc_miss_ratio + 0.05)
        << "at " << points[i].ways << " ways";
  // With all ways, both reuse components fit: only streaming misses.
  EXPECT_LT(points.back().llc_miss_ratio, 0.45);
  EXPECT_GT(points.front().llc_miss_ratio, points.back().llc_miss_ratio);
}

TEST(Measure, MeasuredRoughlyMatchesAnalyticCurve) {
  const auto hw = small_hw();
  const WorkloadModel m(small_workload(), hw.llc.ways,
                        static_cast<double>(hw.llc_way_bytes()), 1);
  const auto p = measure_at_ways(m, hw, 4, 30000, 80000, 11);
  // The analytic MRC models LLC-resident capacity; the measured ratio also
  // benefits from L1/L2 filtering of hot lines, so agreement is loose.
  EXPECT_NEAR(p.llc_miss_ratio, m.miss_ratio(4.0), 0.25);
}

TEST(Measure, CharacterizationFieldsPopulated) {
  const auto hw = small_hw();
  const WorkloadModel m(small_workload(), hw.llc.ways,
                        static_cast<double>(hw.llc_way_bytes()), 1);
  const Characterization c = characterize(m, hw, 1, 20000, 50000, 13);
  EXPECT_EQ(c.id, "synthetic");
  EXPECT_GT(c.llc_miss_ratio, 0.0);
  EXPECT_GT(c.data_reuse, 0.0);
  EXPECT_LT(c.data_reuse, 1.0);
  EXPECT_DOUBLE_EQ(c.baseline_service_time, 1.0);
  EXPECT_GT(c.llc_mpki, 0.0);
}

TEST(Measure, InvalidWaysThrow) {
  const auto hw = small_hw();
  const WorkloadModel m(small_workload(), hw.llc.ways,
                        static_cast<double>(hw.llc_way_bytes()), 1);
  EXPECT_THROW((void)measure_at_ways(m, hw, 0, 10, 10, 1), ContractViolation);
  EXPECT_THROW((void)measure_at_ways(m, hw, 9, 10, 10, 1), ContractViolation);
}

}  // namespace
}  // namespace stac::wl

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace stac::obs {
namespace {

/// Every test here toggles the process-global recording flag; restore it so
/// test order never matters.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    TraceBuffer::global().clear();
  }
  void TearDown() override {
    TraceBuffer::global().clear();
    set_enabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  set_enabled(false);
  {
    STAC_TRACE_SPAN(span, "noop", "test");
    span.arg("x", 1.0);
  }
  instant("noop.instant", "test");
  EXPECT_EQ(TraceBuffer::global().size(), 0u);
}

TEST_F(TraceTest, SpanRecordsCompleteEvent) {
  set_enabled(true);
  {
    STAC_TRACE_SPAN(span, "work", "test");
    span.arg("items", std::uint64_t{42});
    span.arg("label", std::string("abc"));
  }
  const auto events = TraceBuffer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].cat, "test");
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kComplete);
  EXPECT_GT(events[0].tid, 0u);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "items");
  EXPECT_EQ(events[0].args[0].second, "42");
  EXPECT_EQ(events[0].args[1].second, "\"abc\"");
}

TEST_F(TraceTest, FinishIsIdempotent) {
  set_enabled(true);
  {
    STAC_TRACE_SPAN(span, "once", "test");
    span.finish();
    span.finish();  // destructor will be the third call
  }
  EXPECT_EQ(TraceBuffer::global().size(), 1u);
}

TEST_F(TraceTest, InstantRecordsPointEvent) {
  set_enabled(true);
  instant("fault.hit", "fault");
  const auto events = TraceBuffer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kInstant);
  EXPECT_EQ(events[0].cat, "fault");
}

TEST_F(TraceTest, SpanOpenedBeforeDisableStillRecords) {
  // The active flag is latched at construction: a span that began while
  // tracing was on finishes its record even if tracing is switched off
  // mid-flight (and vice versa: late enabling does not create spans
  // retroactively).
  set_enabled(true);
  TraceSpan span("latched", "test");
  set_enabled(false);
  span.finish();
  EXPECT_EQ(TraceBuffer::global().size(), 1u);
}

TEST_F(TraceTest, BufferCapCountsDropped) {
  set_enabled(true);
  TraceBuffer::global().set_capacity(4);
  for (int i = 0; i < 10; ++i) instant("spam", "test");
  EXPECT_EQ(TraceBuffer::global().size(), 4u);
  EXPECT_EQ(TraceBuffer::global().dropped(), 6u);
  TraceBuffer::global().set_capacity(1u << 20);
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  set_enabled(true);
  {
    STAC_TRACE_SPAN(span, "json \"span\"", "queueing");
    span.arg("utilization", 0.75);
  }
  instant("chaos", "fault");
  const std::string json = TraceBuffer::global().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"queueing\""), std::string::npos);
  // Quotes in names must be escaped or the document is unparseable.
  EXPECT_NE(json.find("json \\\"span\\\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceRoundTrips) {
  set_enabled(true);
  instant("written", "test");
  const std::string path =
      ::testing::TempDir() + "/stac_trace_test_out.json";
  ASSERT_TRUE(TraceBuffer::global().write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("written"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, ThreadsGetDistinctStableIds) {
  const std::uint32_t main_tid = thread_id();
  EXPECT_EQ(thread_id(), main_tid);  // stable on re-query
  std::uint32_t other_tid = 0;
  std::thread t([&] { other_tid = thread_id(); });
  t.join();
  EXPECT_NE(other_tid, 0u);
  EXPECT_NE(other_tid, main_tid);
}

TEST_F(TraceTest, NowUsIsMonotone) {
  const auto a = now_us();
  const auto b = now_us();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace stac::obs

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace stac::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    MetricsRegistry::global().reset();
    set_enabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(MetricsTest, CounterAndGaugeBasics) {
  auto& reg = MetricsRegistry::global();
  reg.counter("a").add();
  reg.counter("a").add(4);
  reg.gauge("g").set(2.5);
  EXPECT_EQ(reg.counter_value("a"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 2.5);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST_F(MetricsTest, HandleStabilityAcrossInsertions) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("stable");
  for (int i = 0; i < 100; ++i)
    reg.counter("other-" + std::to_string(i)).add();
  a.add(7);  // the reference must still point at the same counter
  EXPECT_EQ(reg.counter_value("stable"), 7u);
}

TEST_F(MetricsTest, ConcurrentCountsAreExact) {
  auto& reg = MetricsRegistry::global();
  constexpr int kThreads = 8, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) reg.counter("hot").add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter_value("hot"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, LatencyRecorderMomentsAndPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(static_cast<double>(i));
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_DOUBLE_EQ(rec.moments().mean(), 50.5);
  EXPECT_NEAR(rec.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(rec.percentile(0.95), 95.05, 1e-9);
}

TEST_F(MetricsTest, LatencyPercentileOfEmptyIsNaNNotThrow) {
  LatencyRecorder rec;
  EXPECT_TRUE(std::isnan(rec.percentile(0.95)));
}

TEST_F(MetricsTest, ReservoirCapKeepsMomentsComplete) {
  LatencyRecorder rec(8);  // tiny reservoir
  for (int i = 0; i < 100; ++i) rec.record(1.0);
  EXPECT_EQ(rec.count(), 100u);       // moments cover everything
  EXPECT_DOUBLE_EQ(rec.percentile(0.5), 1.0);  // reservoir still answers
}

TEST_F(MetricsTest, ToJsonShapeAndDeterminism) {
  auto& reg = MetricsRegistry::global();
  reg.counter("z.count").add(3);
  reg.gauge("a.gauge").set(1.5);
  reg.latency("m.lat").record(0.25);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"z.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"a.gauge\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"m.lat\": {\"count\": 1"), std::string::npos);
  // Keys are sorted, so the document is byte-stable run to run.
  EXPECT_LT(json.find("a.gauge"), json.find("m.lat"));
  EXPECT_LT(json.find("m.lat"), json.find("z.count"));
  EXPECT_EQ(json, reg.to_json());
}

TEST_F(MetricsTest, GatedHelpersRespectRuntimeFlag) {
  set_enabled(false);
  count("gated.counter");
  set_gauge("gated.gauge", 1.0);
  record_latency("gated.lat", 0.1);
  EXPECT_EQ(MetricsRegistry::global().size(), 0u);

  set_enabled(true);
  count("gated.counter", 2);
  EXPECT_EQ(MetricsRegistry::global().counter_value("gated.counter"), 2u);
}

TEST_F(MetricsTest, CountsFromPoolWorkers) {
  set_enabled(true);
  ThreadPool::global().parallel_for(0, 1000,
                                    [](std::size_t) { count("pool.work"); });
  EXPECT_EQ(MetricsRegistry::global().counter_value("pool.work"), 1000u);
}

}  // namespace
}  // namespace stac::obs

// End-to-end pipeline integration: Stage 1 profiling -> Stage 2 deep forest
// -> Stage 3 queueing prediction -> policy recommendation, checked against
// ground-truth testbed measurements (a miniature of the paper's evaluation).
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/stac_manager.hpp"

namespace stac::core {
namespace {

using profiler::RuntimeCondition;

StacOptions fast_options() {
  StacOptions opts;
  opts.profile_budget = 14;
  opts.profiler.target_completions = 500;
  opts.profiler.warmup_completions = 60;
  opts.profiler.max_windows = 2;
  opts.profiler.accesses_per_sample = 1000;
  opts.model.deep_forest.mgs.window_sizes = {5, 10};
  opts.model.deep_forest.mgs.estimators = 12;
  opts.model.deep_forest.cascade.levels = 2;
  opts.model.deep_forest.cascade.estimators = 25;
  opts.predictor.sim_queries = 3000;
  opts.sampler.seed = 21;
  return opts;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mgr_ = new StacManager(fast_options());
    mgr_->calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);
  }
  static void TearDownTestSuite() {
    delete mgr_;
    mgr_ = nullptr;
  }
  static RuntimeCondition condition(double up, double uc, double tp,
                                    double tc, std::uint64_t seed) {
    RuntimeCondition c;
    c.primary = wl::Benchmark::kKmeans;
    c.collocated = wl::Benchmark::kRedis;
    c.util_primary = up;
    c.util_collocated = uc;
    c.timeout_primary = tp;
    c.timeout_collocated = tc;
    c.seed = seed;
    return c;
  }
  static StacManager* mgr_;
};

StacManager* PipelineTest::mgr_ = nullptr;

TEST_F(PipelineTest, CalibrationPopulatesLibraryAndModel) {
  EXPECT_TRUE(mgr_->calibrated());
  EXPECT_GE(mgr_->library().size(), 20u);
  // Profiles exist in both directions.
  bool fwd = false, rev = false;
  for (const auto& p : mgr_->library().profiles()) {
    fwd |= p.condition.primary == wl::Benchmark::kKmeans;
    rev |= p.condition.primary == wl::Benchmark::kRedis;
  }
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(rev);
}

TEST_F(PipelineTest, PredictionsTrackGroundTruth) {
  Rng rng(99);
  SampleStats apes;
  for (int i = 0; i < 6; ++i) {
    const auto c = condition(rng.uniform(0.3, 0.9), rng.uniform(0.3, 0.9),
                             rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0),
                             rng.next_u64());
    const RtPrediction pred = mgr_->predict(c);
    const auto truth =
        mgr_->evaluate(c, c.timeout_primary, c.timeout_collocated, 1200);
    apes.add(absolute_percent_error(pred.mean_rt, truth.mean_rt(0)));
  }
  // Generous bound: the integration test guards the pipeline wiring, the
  // bench harness measures the paper-grade number.
  EXPECT_LT(apes.median(), 0.40);
}

TEST_F(PipelineTest, RecommendationBeatsNoSharingOnTestbed) {
  const auto base = condition(0.9, 0.9, 6.0, 6.0, 31);
  const PolicyExploration rec = mgr_->recommend(base);
  const auto never = mgr_->evaluate(base, 6.0, 6.0, 1500);
  const auto ours = mgr_->evaluate(base, rec.selection.timeout_primary,
                                   rec.selection.timeout_collocated, 1500);
  // Model-driven short-term allocation must help the primary workload and
  // not devastate the neighbour.
  EXPECT_LT(ours.p95_rt(0), never.p95_rt(0));
  EXPECT_LT(ours.p95_rt(1), never.p95_rt(1) * 1.1);
}

TEST_F(PipelineTest, PredictedEaInPhysicalRange) {
  const auto c = condition(0.7, 0.7, 1.0, 1.0, 17);
  const RtPrediction pred = mgr_->predict(c);
  EXPECT_GT(pred.ea, 0.0);
  EXPECT_LE(pred.ea, 1.0);
}

TEST_F(PipelineTest, ConceptsAvailableForInsightClustering) {
  const auto& profiles = mgr_->library().profiles();
  ASSERT_FALSE(profiles.empty());
  const auto sample = mgr_->model().make_sample(profiles.front());
  const auto concepts = mgr_->model().concepts(sample);
  EXPECT_FALSE(concepts.empty());
}

}  // namespace
}  // namespace stac::core

// Integration: profile persistence across the full pipeline — profile on
// the testbed, save, load in a "new session", train the EA model from the
// loaded library, and verify predictions are identical to training on the
// originals (the paper's offline workflow: profile once, model anywhere).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/rt_predictor.hpp"
#include "profiler/profile_io.hpp"

namespace stac::core {
namespace {

using profiler::Profile;
using profiler::Profiler;
using profiler::ProfilerConfig;
using profiler::RuntimeCondition;

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 300;
  cfg.warmup_completions = 40;
  cfg.max_windows = 2;
  cfg.accesses_per_sample = 800;
  return cfg;
}

TEST(PersistenceIntegration, SaveLoadTrainPredictMatches) {
  Profiler profiler(fast_config());
  Rng rng(71);
  std::vector<RuntimeCondition> conditions;
  for (int i = 0; i < 8; ++i)
    conditions.push_back(random_condition(wl::Benchmark::kKmeans,
                                          wl::Benchmark::kBfs,
                                          profiler::ConditionRanges{}, rng));
  const std::vector<Profile> original =
      profiler.profile_conditions(conditions);
  ASSERT_GE(original.size(), 6u);

  const char* path = "/tmp/stac_persistence_integration.txt";
  save_profiles(path, original);
  const std::vector<Profile> loaded = profiler::load_profiles(path);
  std::remove(path);
  ASSERT_EQ(loaded.size(), original.size());

  EaModelConfig cfg;
  cfg.deep_forest.mgs.window_sizes = {5};
  cfg.deep_forest.mgs.estimators = 8;
  cfg.deep_forest.cascade.levels = 2;
  cfg.deep_forest.cascade.estimators = 15;

  EaModel from_original(cfg);
  from_original.fit(original);
  EaModel from_loaded(cfg);
  from_loaded.fit(loaded);

  // Same training data (bit-exact round trip) + same seeds => identical
  // forests => identical predictions.
  for (const auto& p : original) {
    EXPECT_DOUBLE_EQ(from_original.predict(from_original.make_sample(p)),
                     from_loaded.predict(from_loaded.make_sample(p)));
  }
}

TEST(PersistenceIntegration, LoadedProfilesServeAsLibrary) {
  Profiler profiler(fast_config());
  Rng rng(73);
  std::vector<RuntimeCondition> conditions;
  for (int i = 0; i < 6; ++i)
    conditions.push_back(random_condition(wl::Benchmark::kKnn,
                                          wl::Benchmark::kRedis,
                                          profiler::ConditionRanges{}, rng));
  auto profiles = profiler.profile_conditions(conditions);
  ASSERT_FALSE(profiles.empty());

  const char* path = "/tmp/stac_persistence_library.txt";
  save_profiles(path, profiles);
  ProfileLibrary library;
  library.add_all(profiler::load_profiles(path));
  std::remove(path);

  EaModelConfig cfg;
  cfg.backend = EaBackend::kSimpleForest;
  cfg.forest.estimators = 20;
  EaModel model(cfg);
  model.fit(library.profiles());

  RtPredictor predictor(profiler, &model, &library, RtPredictorConfig{});
  const RuntimeCondition q = profiles.front().condition;
  const RtPrediction pred = predictor.predict(q);
  EXPECT_GT(pred.mean_rt, 0.0);
  EXPECT_GT(pred.ea, 0.0);
  EXPECT_LE(pred.ea, 1.0);
}

}  // namespace
}  // namespace stac::core

// Long-run robustness: drive the G/G/k simulator and the CatController for
// 50k completions / cycles under an armed fault plan and check that the
// control-plane invariants hold exactly — no leaked boost refcounts, no
// negative sojourns, switch counts that match an independently tracked
// shadow accounting.
#include <gtest/gtest.h>

#include <vector>

#include "cat/cat_controller.hpp"
#include "common/fault_injection.hpp"
#include "queueing/ggk_simulator.hpp"

namespace stac {
namespace {

TEST(StressInvariants, GGk50kCompletionsUnderChaos) {
  FaultPlan plan;
  plan.seed = 4242;
  plan.add({.point = "ggk.service",
            .action = FaultAction::kLatency,
            .probability = 0.03,
            .latency = 2.0});
  FaultScope scope(plan);

  queueing::GGkConfig cfg;
  cfg.utilization = 0.8;
  cfg.servers = 2;
  cfg.service_cv = 0.5;
  cfg.timeout_rel = 0.8;
  cfg.effective_allocation = 0.7;
  cfg.allocation_ratio = 3.0;
  cfg.queries = 50'200;
  cfg.warmup = 200;
  cfg.seed = 11;
  const auto r = queueing::simulate_ggk(cfg);

  EXPECT_EQ(r.completed, 50'000u);
  EXPECT_EQ(r.response_times.count(), r.completed);
  EXPECT_EQ(r.negative_sojourns, 0u);
  EXPECT_GT(r.boosted_queries, 0u);
  EXPECT_GT(r.latency_injections, 500u);  // ~3% of 50k arrivals
  // Refcount teardown: whatever boost references remain are exactly the
  // still-outstanding overdue jobs — nothing leaked, nothing double-freed.
  EXPECT_EQ(r.residual_boost_refs, r.residual_overdue_jobs);
  // Switch accounting: up- and down-transitions alternate, so the total is
  // odd exactly when the class ends the run boosted.
  EXPECT_EQ(r.cos_switches % 2 == 1, r.residual_boost_refs > 0);

  // The same seeds reproduce the identical fault schedule and results.
  const auto r2 = queueing::simulate_ggk(cfg);
  EXPECT_EQ(r2.latency_injections, r.latency_injections);
  EXPECT_DOUBLE_EQ(r2.response_times.mean(), r.response_times.mean());
  EXPECT_EQ(r2.cos_switches, r.cos_switches);
}

TEST(StressInvariants, CatController50kChaoticCyclesMatchShadowAccounting) {
  cachesim::HierarchyConfig hw_cfg;
  hw_cfg.l1d = {8 * 1024, 8, 64, 4};
  hw_cfg.l1i = {8 * 1024, 8, 64, 4};
  hw_cfg.l2 = {64 * 1024, 16, 64, 12};
  hw_cfg.llc = {512 * 1024, 8, 64, 40};
  cachesim::CacheHierarchy hw(hw_cfg, 2);
  const cat::AllocationPlan plan = cat::make_pair_plan(8, 1, 2);

  FaultPlan faults;
  faults.seed = 7;
  faults.add({.point = "cat.apply",
              .action = FaultAction::kThrow,
              .probability = 0.15});
  FaultScope scope(faults);

  cat::CatResilienceConfig res;
  res.max_boost_lease = 1.0;
  cat::CatController cat(hw, plan, res);

  // Shadow state tracked independently of the controller.
  std::vector<std::uint32_t> refs(2, 0);
  std::uint64_t expected_switches = 0;
  std::uint64_t expected_spurious = 0;
  Rng rng(99);

  for (int i = 0; i < 50'000; ++i) {
    const double now = 0.01 * i;
    const std::size_t w = rng.uniform_index(2);
    // Balanced grant/release mix (refcounts hover near zero, so COS
    // transitions — and thus chaotic applies — stay frequent) plus
    // periodic watchdog sweeps.
    switch (rng.uniform_index(8)) {
      case 0:
      case 1:
      case 2: {  // grant
        const bool was_degraded = cat.degraded(w);
        if (!was_degraded && refs[w] == 0) ++expected_switches;
        cat.boost(w, now);
        if (!was_degraded) {
          if (cat.degraded(w))
            refs[w] = 0;  // the grant's apply degraded the workload
          else
            ++refs[w];
        }
        break;
      }
      case 3:
      case 4:
      case 5: {  // release
        if (refs[w] == 0) {
          ++expected_spurious;
          cat.unboost(w);
        } else {
          if (refs[w] == 1) ++expected_switches;
          cat.unboost(w);
          --refs[w];
        }
        break;
      }
      default: {  // watchdog sweep
        const std::size_t revoked = cat.poll_watchdog(now);
        expected_switches += revoked;
        for (std::size_t x = 0; x < 2; ++x)
          if (refs[x] > 0 && !cat.is_boosted(x)) refs[x] = 0;
        break;
      }
    }
    // Occasionally recover a degraded workload (operator action).
    if (i % 977 == 0)
      for (std::size_t x = 0; x < 2; ++x)
        if (cat.degraded(x)) cat.clear_degraded(x);
  }

  // The chaos actually bit: failures happened and at least one persistent
  // failure degraded a workload.
  EXPECT_GT(cat.fault_stats().write_failures, 100u);
  EXPECT_GT(cat.fault_stats().degraded_reverts, 0u);
  EXPECT_GT(cat.fault_stats().watchdog_revocations, 0u);

  // Exact accounting after 50k chaotic operations.
  EXPECT_EQ(cat.switch_count(), expected_switches);
  EXPECT_EQ(cat.fault_stats().spurious_unboosts, expected_spurious);
  for (std::size_t w = 0; w < 2; ++w) {
    EXPECT_EQ(cat.is_boosted(w), refs[w] > 0) << "workload " << w;
    // The programmed mask always matches the controller's view.
    EXPECT_EQ(hw.llc_fill_mask(static_cast<cachesim::ClassId>(w)),
              cat.current_allocation(w).mask())
        << "workload " << w;
  }

  // Teardown: releasing every shadow reference leaves nothing boosted.
  for (std::size_t w = 0; w < 2; ++w) {
    while (refs[w] > 0) {
      cat.unboost(w);
      --refs[w];
    }
    EXPECT_FALSE(cat.is_boosted(w));
  }
}

}  // namespace
}  // namespace stac

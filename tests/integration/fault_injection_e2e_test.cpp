// End-to-end chaos acceptance: with COS writes failing 10% of the time,
// 5% of profiler samples dropped and a corrupt profile record on disk, the
// full StacManager pipeline (calibrate -> predict -> recommend -> evaluate)
// must complete, report the degradation rung it answered from, leak no
// boost grants, and reproduce the identical fault schedule and results for
// the same plan seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/fault_injection.hpp"
#include "core/stac_manager.hpp"
#include "profiler/profile_io.hpp"

namespace stac::core {
namespace {

using profiler::RuntimeCondition;

StacOptions fast_options() {
  StacOptions opts;
  opts.profile_budget = 10;
  opts.profiler.target_completions = 400;
  opts.profiler.warmup_completions = 50;
  opts.profiler.max_windows = 2;
  opts.profiler.accesses_per_sample = 800;
  opts.model.backend = EaBackend::kSimpleForest;
  opts.model.forest.estimators = 16;
  opts.predictor.sim_queries = 2000;
  opts.sampler.seed = 33;
  return opts;
}

RuntimeCondition make_condition() {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kRedis;
  c.util_primary = 0.7;
  c.util_collocated = 0.6;
  c.timeout_primary = 1.5;
  c.timeout_collocated = 2.0;
  c.seed = 5;
  return c;
}

/// Flip the checksum of the last record in a saved profile file.
void corrupt_last_record(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::size_t pos = text.rfind("checksum ");
  ASSERT_NE(pos, std::string::npos);
  const std::string bogus = text.compare(pos + 9, 16, "0123456789abcdef")
                                ? "0123456789abcdef"
                                : "fedcba9876543210";
  text.replace(pos + 9, 16, bogus);
  std::ofstream out(path);
  out << text;
}

struct ScenarioResult {
  double mean_rt = 0.0;
  double ea = 0.0;
  DegradationRung rung = DegradationRung::kPrimaryModel;
  double rec_timeout_primary = 0.0;
  std::size_t quarantined = 0;
  std::uint64_t cat_apply_injected = 0;
  std::uint64_t samples_injected = 0;
};

ScenarioResult run_scenario(std::uint64_t plan_seed) {
  FaultPlan plan;
  plan.seed = plan_seed;
  plan.add({.point = "cat.apply",
            .action = FaultAction::kThrow,
            .probability = 0.10});
  plan.add({.point = "profiler.sample",
            .action = FaultAction::kDrop,
            .probability = 0.05});
  FaultScope scope(plan);

  StacManager mgr(fast_options());
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);
  EXPECT_TRUE(mgr.calibrated());

  // One corrupt profile record on disk: save the library, damage the last
  // record's checksum, merge the file back in.
  const char* path = "/tmp/stac_fault_e2e_profiles.txt";
  profiler::save_profiles(path, mgr.library().profiles());
  corrupt_last_record(path);
  const std::size_t before = mgr.library().size();
  const std::size_t added = mgr.load_profiles(path);
  std::remove(path);
  EXPECT_EQ(added, before - 1);  // all but the damaged record survive
  EXPECT_EQ(mgr.library().quarantine_log().size(), 1u);

  const RuntimeCondition c = make_condition();
  const RtPrediction pred = mgr.predict(c);
  EXPECT_GT(pred.mean_rt, 0.0);
  const PolicyExploration rec = mgr.recommend(c);

  // Ground-truth run under the same chaos; teardown must show zero leaked
  // boost grants (whatever refcount remains covers in-flight queries).
  const auto eval = mgr.evaluate(c, rec.selection.timeout_primary,
                                 rec.selection.timeout_collocated, 800);
  for (const auto& w : eval.per_workload)
    EXPECT_EQ(w.final_boost_refs, w.final_inflight_boosted);

  ScenarioResult r;
  r.mean_rt = pred.mean_rt;
  r.ea = pred.ea;
  r.rung = pred.rung;
  r.rec_timeout_primary = rec.selection.timeout_primary;
  r.quarantined = mgr.library().quarantine_log().size();
  r.cat_apply_injected =
      FaultInjector::global().stats("cat.apply").injected;
  r.samples_injected =
      FaultInjector::global().stats("profiler.sample").injected;
  return r;
}

TEST(FaultInjectionE2E, PipelineSurvivesChaosAndReproduces) {
  const ScenarioResult a = run_scenario(2026);
  // The chaos was real.
  EXPECT_GT(a.cat_apply_injected, 0u);
  EXPECT_GT(a.samples_injected, 0u);
  EXPECT_EQ(a.quarantined, 1u);
  // The pipeline still answered, reporting the rung it answered from (the
  // primary model trains fine here — faults hit the control plane, not the
  // trainer).
  EXPECT_EQ(a.rung, DegradationRung::kPrimaryModel);
  EXPECT_GT(a.ea, 0.0);
  EXPECT_LE(a.ea, 1.0);

  // Same plan seed -> identical fault schedule -> identical results.
  const ScenarioResult b = run_scenario(2026);
  EXPECT_EQ(b.cat_apply_injected, a.cat_apply_injected);
  EXPECT_EQ(b.samples_injected, a.samples_injected);
  EXPECT_DOUBLE_EQ(b.mean_rt, a.mean_rt);
  EXPECT_DOUBLE_EQ(b.ea, a.ea);
  EXPECT_EQ(b.rung, a.rung);
  EXPECT_DOUBLE_EQ(b.rec_timeout_primary, a.rec_timeout_primary);

  // A different seed reshuffles the schedule.
  const ScenarioResult c = run_scenario(2027);
  EXPECT_FALSE(c.cat_apply_injected == a.cat_apply_injected &&
               c.samples_injected == a.samples_injected &&
               c.mean_rt == a.mean_rt);
}

TEST(FaultInjectionE2E, PredictorDropsToNearestNeighborWhenModelsFail) {
  StacManager mgr(fast_options());
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);
  ASSERT_TRUE(mgr.model().trained());

  // Every model-server call fails: both the primary and the linear fallback
  // throw, so the ladder answers from the profile library.
  FaultPlan plan;
  plan.add({.point = "model.predict",
            .action = FaultAction::kThrow,
            .probability = 1.0});
  FaultScope scope(plan);
  const RtPrediction pred = mgr.predict(make_condition());
  EXPECT_EQ(pred.rung, DegradationRung::kNearestNeighbor);
  EXPECT_GT(pred.mean_rt, 0.0);
  EXPECT_GT(pred.ea, 0.0);
  EXPECT_LE(pred.ea, 1.0);

  // With the chaos gone the same manager is back on the primary model.
  scope.disarm();
  EXPECT_EQ(mgr.predict(make_condition()).rung,
            DegradationRung::kPrimaryModel);
}

TEST(FaultInjectionE2E, CalibrateSurvivesTrainerFailure) {
  // The trainer itself dies: calibrate() must still leave a usable manager
  // whose predictions start below rung 0.
  FaultPlan plan;
  plan.add({.point = "model.fit",
            .action = FaultAction::kThrow,
            .probability = 1.0});
  FaultScope scope(plan);
  StacManager mgr(fast_options());
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);
  EXPECT_TRUE(mgr.calibrated());
  EXPECT_TRUE(mgr.primary_model_degraded());
  scope.disarm();

  const RtPrediction pred = mgr.predict(make_condition());
  EXPECT_EQ(pred.rung, DegradationRung::kNearestNeighbor);
  EXPECT_GT(pred.mean_rt, 0.0);
}

}  // namespace
}  // namespace stac::core

#include "core/policy_explorer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"

namespace stac::core {
namespace {

using profiler::Profiler;
using profiler::ProfilerConfig;
using profiler::RuntimeCondition;

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 300;
  cfg.warmup_completions = 40;
  return cfg;
}

RuntimeCondition pairing() {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kRedis;
  c.util_primary = 0.9;
  c.util_collocated = 0.9;
  c.seed = 4;
  return c;
}

class PolicyExplorerTest : public ::testing::Test {
 protected:
  PolicyExplorerTest()
      : profiler_(fast_config()),
        predictor_(profiler_, nullptr, nullptr,
                   [] {
                     RtPredictorConfig cfg;
                     cfg.analytic_ea = true;
                     cfg.sim_queries = 2500;
                     return cfg;
                   }()) {}
  Profiler profiler_;
  RtPredictor predictor_;
};

TEST_F(PolicyExplorerTest, GridFullyExplored) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0};
  const PolicyExploration r =
      explore_policies(predictor_, pairing(), cfg);
  EXPECT_EQ(r.predicted_primary.rows(), 3u);
  EXPECT_EQ(r.predicted_primary.cols(), 3u);
  EXPECT_EQ(r.predictions_made, 18u);  // 9 pairs x 2 directions
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_GT(r.predicted_primary(i, j), 0.0);
}

TEST_F(PolicyExplorerTest, SelectionComesFromGrid) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 0.5, 1.0, 2.0, 4.0};  // the paper's 5 settings
  const PolicyExploration r =
      explore_policies(predictor_, pairing(), cfg);
  EXPECT_EQ(r.selection.name, "model-driven");
  EXPECT_NE(std::find(cfg.grid.begin(), cfg.grid.end(),
                      r.selection.timeout_primary),
            cfg.grid.end());
  EXPECT_NE(std::find(cfg.grid.begin(), cfg.grid.end(),
                      r.selection.timeout_collocated),
            cfg.grid.end());
  EXPECT_GT(r.slack_used, 0.0);
}

TEST_F(PolicyExplorerTest, SelectionBeatsNeverBoostInPrediction) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0, 6.0};
  const PolicyExploration r =
      explore_policies(predictor_, pairing(), cfg);
  // The selected cell's predicted RT must be at most the never-boost cell.
  const std::size_t never = 3;
  std::size_t si = 0, sj = 0;
  for (std::size_t i = 0; i < cfg.grid.size(); ++i) {
    if (cfg.grid[i] == r.selection.timeout_primary) si = i;
    if (cfg.grid[i] == r.selection.timeout_collocated) sj = i;
  }
  EXPECT_LE(r.predicted_primary(si, sj),
            r.predicted_primary(never, never) * (1.0 + r.slack_used) + 1e-9);
}

TEST_F(PolicyExplorerTest, ParallelSweepBitIdenticalAcrossThreadCounts) {
  // Each grid cell is internally seeded and writes only its own slots, so
  // the sweep must return the same selection and the same predicted
  // matrices bit for bit, whatever the pool size — including serial.
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0};
  cfg.parallel = false;
  const PolicyExploration serial =
      explore_policies(predictor_, pairing(), cfg);

  ThreadPool one(1), four(4);
  for (ThreadPool* pool : {&one, &four}) {
    cfg.parallel = true;
    cfg.pool = pool;
    const PolicyExploration r = explore_policies(predictor_, pairing(), cfg);
    EXPECT_EQ(r.selection.timeout_primary, serial.selection.timeout_primary);
    EXPECT_EQ(r.selection.timeout_collocated,
              serial.selection.timeout_collocated);
    EXPECT_EQ(r.slack_used, serial.slack_used);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(r.predicted_primary(i, j), serial.predicted_primary(i, j));
        EXPECT_EQ(r.predicted_collocated(i, j),
                  serial.predicted_collocated(i, j));
      }
    }
  }
}

TEST_F(PolicyExplorerTest, EmptyGridThrows) {
  ExplorerConfig cfg;
  cfg.grid.clear();
  EXPECT_THROW(explore_policies(predictor_, pairing(), cfg),
               ContractViolation);
}

}  // namespace
}  // namespace stac::core

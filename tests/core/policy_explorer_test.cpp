#include "core/policy_explorer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace stac::core {
namespace {

using profiler::Profiler;
using profiler::ProfilerConfig;
using profiler::RuntimeCondition;

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 300;
  cfg.warmup_completions = 40;
  return cfg;
}

RuntimeCondition pairing() {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kRedis;
  c.util_primary = 0.9;
  c.util_collocated = 0.9;
  c.seed = 4;
  return c;
}

class PolicyExplorerTest : public ::testing::Test {
 protected:
  PolicyExplorerTest()
      : profiler_(fast_config()),
        predictor_(profiler_, nullptr, nullptr,
                   [] {
                     RtPredictorConfig cfg;
                     cfg.analytic_ea = true;
                     cfg.sim_queries = 2500;
                     return cfg;
                   }()) {}
  Profiler profiler_;
  RtPredictor predictor_;
};

TEST_F(PolicyExplorerTest, GridFullyExplored) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0};
  const PolicyExploration r =
      explore_policies(predictor_, pairing(), cfg);
  EXPECT_EQ(r.predicted_primary.rows(), 3u);
  EXPECT_EQ(r.predicted_primary.cols(), 3u);
  EXPECT_EQ(r.predictions_made, 18u);  // 9 pairs x 2 directions
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_GT(r.predicted_primary(i, j), 0.0);
}

TEST_F(PolicyExplorerTest, SelectionComesFromGrid) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 0.5, 1.0, 2.0, 4.0};  // the paper's 5 settings
  const PolicyExploration r =
      explore_policies(predictor_, pairing(), cfg);
  EXPECT_EQ(r.selection.name, "model-driven");
  EXPECT_NE(std::find(cfg.grid.begin(), cfg.grid.end(),
                      r.selection.timeout_primary),
            cfg.grid.end());
  EXPECT_NE(std::find(cfg.grid.begin(), cfg.grid.end(),
                      r.selection.timeout_collocated),
            cfg.grid.end());
  EXPECT_GT(r.slack_used, 0.0);
}

TEST_F(PolicyExplorerTest, SelectionBeatsNeverBoostInPrediction) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0, 6.0};
  const PolicyExploration r =
      explore_policies(predictor_, pairing(), cfg);
  // The selected cell's predicted RT must be at most the never-boost cell.
  const std::size_t never = 3;
  std::size_t si = 0, sj = 0;
  for (std::size_t i = 0; i < cfg.grid.size(); ++i) {
    if (cfg.grid[i] == r.selection.timeout_primary) si = i;
    if (cfg.grid[i] == r.selection.timeout_collocated) sj = i;
  }
  EXPECT_LE(r.predicted_primary(si, sj),
            r.predicted_primary(never, never) * (1.0 + r.slack_used) + 1e-9);
}

TEST_F(PolicyExplorerTest, ParallelSweepBitIdenticalAcrossThreadCounts) {
  // Each grid cell is internally seeded and writes only its own slots, so
  // the sweep must return the same selection and the same predicted
  // matrices bit for bit, whatever the pool size — including serial.
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0};
  cfg.parallel = false;
  const PolicyExploration serial =
      explore_policies(predictor_, pairing(), cfg);

  ThreadPool one(1), four(4);
  for (ThreadPool* pool : {&one, &four}) {
    cfg.parallel = true;
    cfg.pool = pool;
    const PolicyExploration r = explore_policies(predictor_, pairing(), cfg);
    EXPECT_EQ(r.selection.timeout_primary, serial.selection.timeout_primary);
    EXPECT_EQ(r.selection.timeout_collocated,
              serial.selection.timeout_collocated);
    EXPECT_EQ(r.slack_used, serial.slack_used);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(r.predicted_primary(i, j), serial.predicted_primary(i, j));
        EXPECT_EQ(r.predicted_collocated(i, j),
                  serial.predicted_collocated(i, j));
      }
    }
  }
}

TEST_F(PolicyExplorerTest, EmptyGridThrows) {
  ExplorerConfig cfg;
  cfg.grid.clear();
  EXPECT_THROW(explore_policies(predictor_, pairing(), cfg),
               ContractViolation);
}

TEST_F(PolicyExplorerTest, GridContractRejectsNonFiniteAndUnsorted) {
  // Satellite contract (validate_explorer_config): the grid must be
  // non-empty, all-finite and strictly ascending — checked at entry,
  // before any simulation money is spent.
  ExplorerConfig cfg;
  cfg.grid = {0.0, std::numeric_limits<double>::quiet_NaN(), 4.0};
  EXPECT_THROW(explore_policies(predictor_, pairing(), cfg),
               ContractViolation);
  cfg.grid = {0.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(explore_policies(predictor_, pairing(), cfg),
               ContractViolation);
  cfg.grid = {1.0, 0.5, 2.0};  // unsorted
  EXPECT_THROW(explore_policies(predictor_, pairing(), cfg),
               ContractViolation);
  cfg.grid = {0.0, 1.0, 1.0};  // duplicate = not strictly ascending
  EXPECT_THROW(explore_policies(predictor_, pairing(), cfg),
               ContractViolation);
  // The incremental entry point shares the same contract.
  ExplorationMemo memo;
  EXPECT_THROW(
      explore_policies_incremental(predictor_, pairing(), cfg, memo, 0),
      ContractViolation);
}

TEST_F(PolicyExplorerTest, BatchSweepBitIdenticalToPerCell) {
  // config.batch routes the whole grid through predict_batch and the
  // batch G/G/k engine — matrices and selection must not move a bit.
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0};
  cfg.parallel = false;
  const PolicyExploration serial = explore_policies(predictor_, pairing(), cfg);
  cfg.batch = true;
  const PolicyExploration batch = explore_policies(predictor_, pairing(), cfg);
  EXPECT_EQ(batch.selection.timeout_primary, serial.selection.timeout_primary);
  EXPECT_EQ(batch.selection.timeout_collocated,
            serial.selection.timeout_collocated);
  EXPECT_EQ(batch.slack_used, serial.slack_used);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(batch.predicted_primary(i, j), serial.predicted_primary(i, j));
      EXPECT_EQ(batch.predicted_collocated(i, j),
                serial.predicted_collocated(i, j));
    }
  }
}

TEST_F(PolicyExplorerTest, IncrementalReusesStationaryEpochsBitIdentically) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0};
  const PolicyExploration full = explore_policies(predictor_, pairing(), cfg);
  EXPECT_EQ(full.cells_simulated, 9u);
  EXPECT_EQ(full.cells_reused, 0u);

  // Epoch 1: cold memo — everything simulates, result == full sweep.
  ExplorationMemo memo;
  const PolicyExploration first =
      explore_policies_incremental(predictor_, pairing(), cfg, memo, 7);
  EXPECT_EQ(first.cells_simulated, 9u);
  EXPECT_EQ(first.cells_reused, 0u);

  // Epoch 2: identical condition and generation — zero simulations.
  const PolicyExploration second =
      explore_policies_incremental(predictor_, pairing(), cfg, memo, 7);
  EXPECT_EQ(second.cells_simulated, 0u);
  EXPECT_EQ(second.cells_reused, 9u);
  EXPECT_EQ(second.predictions_made, 0u);

  for (const PolicyExploration* r : {&first, &second}) {
    EXPECT_EQ(r->selection.timeout_primary, full.selection.timeout_primary);
    EXPECT_EQ(r->selection.timeout_collocated,
              full.selection.timeout_collocated);
    EXPECT_EQ(r->slack_used, full.slack_used);
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(r->predicted_primary(i, j), full.predicted_primary(i, j));
        EXPECT_EQ(r->predicted_collocated(i, j),
                  full.predicted_collocated(i, j));
      }
  }
}

TEST_F(PolicyExplorerTest, IncrementalInvalidatesOnDriftRefitAndNewGridPoints) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0};
  ExplorationMemo memo;
  (void)explore_policies_incremental(predictor_, pairing(), cfg, memo, 7);

  // Condition drift (utilization moved): every cell re-simulates.
  RuntimeCondition drifted = pairing();
  drifted.util_primary = 0.85;
  const PolicyExploration after_drift =
      explore_policies_incremental(predictor_, drifted, cfg, memo, 7);
  EXPECT_EQ(after_drift.cells_simulated, 9u);
  EXPECT_EQ(after_drift.cells_reused, 0u);

  // Model refit (generation bump): memoed predictions are dead.
  const PolicyExploration after_refit =
      explore_policies_incremental(predictor_, drifted, cfg, memo, 8);
  EXPECT_EQ(after_refit.cells_simulated, 9u);
  EXPECT_EQ(after_refit.cells_reused, 0u);

  // Grid growth: old (i, j) pairs answer from the memo, cells touching the
  // new point simulate.  3x3 kept of 4x4 = 9 reused, 7 simulated.
  ExplorerConfig wider = cfg;
  wider.grid = {0.0, 1.0, 4.0, 6.0};
  const PolicyExploration after_growth =
      explore_policies_incremental(predictor_, drifted, wider, memo, 8);
  EXPECT_EQ(after_growth.cells_simulated, 7u);
  EXPECT_EQ(after_growth.cells_reused, 9u);

  // And the widened sweep still equals its from-scratch counterpart.
  const PolicyExploration full =
      explore_policies(predictor_, drifted, wider);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(after_growth.predicted_primary(i, j),
                full.predicted_primary(i, j));
      EXPECT_EQ(after_growth.predicted_collocated(i, j),
                full.predicted_collocated(i, j));
    }
}

TEST_F(PolicyExplorerTest, MemoPoolAnswersOscillatingConditionsWarm) {
  // The quantization-boundary scenario: the planned condition flips between
  // two cells forever.  A single memo would full-sweep on every flip; a
  // pool holds one memo per condition, so after one cold sweep each, every
  // revisit reuses all cells.
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0};
  RuntimeCondition lo = pairing();
  lo.util_primary = 0.85;
  const RuntimeCondition hi = pairing();  // util 0.9

  ExplorationMemoPool pool(2);
  std::size_t cold = 0;
  std::size_t warm = 0;
  for (std::size_t epoch = 0; epoch < 8; ++epoch) {
    const RuntimeCondition& cond = (epoch % 2 == 0) ? lo : hi;
    const PolicyExploration r = explore_policies_incremental(
        predictor_, cond, cfg, pool.acquire(cond), 7);
    if (epoch < 2) {
      EXPECT_EQ(r.cells_simulated, 9u) << "epoch " << epoch;
      ++cold;
    } else {
      EXPECT_EQ(r.cells_simulated, 0u) << "epoch " << epoch;
      EXPECT_EQ(r.cells_reused, 9u) << "epoch " << epoch;
      ++warm;
    }
  }
  EXPECT_EQ(cold, 2u);
  EXPECT_EQ(warm, 6u);
}

TEST_F(PolicyExplorerTest, MemoPoolEvictsLeastRecentlyUsed) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0};
  RuntimeCondition a = pairing();
  a.util_primary = 0.80;
  RuntimeCondition b = pairing();
  b.util_primary = 0.85;
  RuntimeCondition c = pairing();
  c.util_primary = 0.90;

  ExplorationMemoPool pool(2);
  auto sweep = [&](const RuntimeCondition& cond) {
    return explore_policies_incremental(predictor_, cond, cfg,
                                        pool.acquire(cond), 7)
        .cells_simulated;
  };
  EXPECT_EQ(sweep(a), 4u);  // cold
  EXPECT_EQ(sweep(b), 4u);  // cold
  EXPECT_EQ(sweep(a), 0u);  // warm — refreshes a's recency
  EXPECT_EQ(sweep(c), 4u);  // cold, evicts b (LRU)
  EXPECT_EQ(sweep(a), 0u);  // a survived
  EXPECT_EQ(sweep(b), 4u);  // b was evicted: cold again
}

TEST(ExplorationMemoPool, ZeroCapacityDisablesMemoingEntirely) {
  // capacity 0 = memoing off: every acquire() hands back a cold scratch
  // memo, even for a condition the previous sweep just wrote into it.
  ExplorationMemoPool pool(0);
  EXPECT_EQ(pool.capacity(), 0u);
  profiler::RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kRedis;
  ExplorationMemo& memo = pool.acquire(c);
  EXPECT_FALSE(memo.valid);
  memo.valid = true;  // simulate a sweep populating the memo
  memo.condition = c;
  ExplorationMemo& again = pool.acquire(c);
  EXPECT_FALSE(again.valid);  // discarded, not recycled
}

TEST_F(PolicyExplorerTest, ZeroCapacityPoolFullSweepsEveryEpoch) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0, 4.0};
  ExplorationMemoPool pool(0);
  const RuntimeCondition cond = pairing();
  for (int epoch = 0; epoch < 3; ++epoch) {
    const PolicyExploration r = explore_policies_incremental(
        predictor_, cond, cfg, pool.acquire(cond), 7);
    EXPECT_EQ(r.cells_simulated, 9u) << "epoch " << epoch;
    EXPECT_EQ(r.cells_reused, 0u) << "epoch " << epoch;
  }
}

TEST_F(PolicyExplorerTest, MemoWithStaleGeometryIsNotServedAfterGridShrink) {
  // A memo populated under one grid must never satisfy a sweep whose grid
  // no longer matches the memoized matrices' geometry — even when valid,
  // same-generation, and same-condition.  The shrunken sweep's matrices
  // must be rebuilt at the new size, not sliced out of the stale ones.
  ExplorerConfig wide;
  wide.grid = {0.0, 1.0, 4.0};
  const RuntimeCondition cond = pairing();
  ExplorationMemo memo;
  (void)explore_policies_incremental(predictor_, cond, wide, memo, 7);
  ASSERT_TRUE(memo.valid);
  ASSERT_EQ(memo.grid.size(), 3u);

  // Corrupt the memo the way a config hot-swap bug would: the grid list
  // shrinks but the matrices keep their old 3x3 geometry.
  memo.grid = {0.0, 1.0};

  ExplorerConfig narrow;
  narrow.grid = {0.0, 1.0};
  const PolicyExploration r =
      explore_policies_incremental(predictor_, cond, narrow, memo, 7);
  EXPECT_EQ(r.cells_simulated, 4u);  // full re-sweep, no stale reuse
  EXPECT_EQ(r.cells_reused, 0u);
  EXPECT_EQ(r.predicted_primary.rows(), 2u);
  EXPECT_EQ(r.predicted_primary.cols(), 2u);
  const PolicyExploration fresh = explore_policies(predictor_, cond, narrow);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_EQ(r.predicted_primary(i, j), fresh.predicted_primary(i, j));
}

// --- slack-relaxation ladder on hand-built matrices (select_policy) ---

PolicyExploration hand_built(const std::vector<std::vector<double>>& p,
                             const std::vector<std::vector<double>>& c) {
  PolicyExploration out;
  const std::size_t g = p.size();
  out.predicted_primary = Matrix(g, g);
  out.predicted_collocated = Matrix(g, g);
  for (std::size_t i = 0; i < g; ++i)
    for (std::size_t j = 0; j < g; ++j) {
      out.predicted_primary(i, j) = p[i][j];
      out.predicted_collocated(i, j) = c[i][j];
    }
  return out;
}

TEST(SelectPolicy, NoRelaxationWhenIntersectionExistsAtBaseSlack) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0};
  cfg.slack = 0.05;
  // Cell (1, 1) is within 5% of both per-side bests.
  PolicyExploration out = hand_built({{1.0, 3.0}, {1.02, 3.0}},
                                     {{3.0, 3.0}, {1.0, 3.0}});
  select_policy(cfg, out);
  EXPECT_EQ(out.selection.timeout_primary, 1.0);
  EXPECT_EQ(out.selection.timeout_collocated, 0.0);
  EXPECT_EQ(out.slack_used, cfg.slack);
}

TEST(SelectPolicy, SlackGrowthNeededExactlyOnce) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0};
  cfg.slack = 0.05;
  cfg.slack_growth = 4.0;
  cfg.max_relaxations = 6;
  // Per-side bests are 1.0 in different cells; at 5% slack neither kept
  // set intersects (the cross predictions are 15–20% off the best), but
  // one relaxation to 20% admits both (0, 0) and (0, 1).  Asymmetric
  // values so min-sum picks (0, 1) without a tie.
  PolicyExploration out = hand_built({{1.0, 1.15}, {5.0, 5.0}},
                                     {{1.2, 1.0}, {5.0, 5.0}});
  select_policy(cfg, out);
  EXPECT_EQ(out.selection.timeout_primary, 0.0);
  EXPECT_EQ(out.selection.timeout_collocated, 1.0);
  EXPECT_DOUBLE_EQ(out.slack_used, 0.05 * 4.0);  // grown exactly once
}

TEST(SelectPolicy, PermanentlyEmptyIntersectionExhaustsLadderThenMinSum) {
  ExplorerConfig cfg;
  cfg.grid = {0.0, 1.0};
  cfg.slack = 0.05;
  cfg.slack_growth = 2.0;
  cfg.max_relaxations = 3;
  // The two sides' bests live in opposite cells and every cross prediction
  // is ~10x the best: slacks 0.05, 0.1, 0.2, 0.4 all leave the
  // intersection empty, so the ladder exhausts and the fallback minimizes
  // the combined sum outright — (0, 0) with 1 + 9 = 10.
  PolicyExploration out = hand_built({{1.0, 10.0}, {10.0, 10.0}},
                                     {{9.0, 10.0}, {10.0, 1.0}});
  select_policy(cfg, out);
  EXPECT_EQ(out.selection.timeout_primary, 0.0);
  EXPECT_EQ(out.selection.timeout_collocated, 0.0);
  // slack grew through every attempt: 0.05 * 2^(max_relaxations + 1).
  EXPECT_DOUBLE_EQ(out.slack_used, 0.05 * 16.0);
}

}  // namespace
}  // namespace stac::core

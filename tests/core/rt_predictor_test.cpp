#include "core/rt_predictor.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::core {
namespace {

using profiler::Profiler;
using profiler::ProfilerConfig;
using profiler::RuntimeCondition;

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 300;
  cfg.warmup_completions = 40;
  cfg.max_windows = 1;
  cfg.accesses_per_sample = 800;
  return cfg;
}

RuntimeCondition condition(double util, double timeout) {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kBfs;
  c.util_primary = util;
  c.util_collocated = util;
  c.timeout_primary = timeout;
  c.timeout_collocated = timeout;
  c.seed = 77;
  return c;
}

TEST(RtPredictor, AnalyticModeNeedsNoModel) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  const RtPrediction p = pred.predict(condition(0.7, 1.0));
  EXPECT_GT(p.mean_rt, 0.0);
  EXPECT_GE(p.p95_rt, p.mean_rt);
  EXPECT_GT(p.ea, 0.0);
  EXPECT_LE(p.ea, 1.0);
  EXPECT_GT(p.norm_mean_rt, 0.5);  // residual speedup can push below 1 base
}

TEST(RtPredictor, LearnedModeRequiresModelAndLibrary) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;  // analytic_ea = false
  EXPECT_THROW(RtPredictor(profiler, nullptr, nullptr, cfg),
               ContractViolation);
}

TEST(RtPredictor, HigherUtilizationPredictsHigherRt) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  EXPECT_LT(pred.predict(condition(0.4, 6.0)).mean_rt,
            pred.predict(condition(0.9, 6.0)).mean_rt);
}

TEST(RtPredictor, BoostingPredictsImprovement) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  const RtPrediction never = pred.predict(condition(0.85, 6.0));
  const RtPrediction boost = pred.predict(condition(0.85, 0.5));
  EXPECT_LT(boost.mean_rt, never.mean_rt);
  EXPECT_GT(boost.boosted_fraction, 0.0);
  EXPECT_DOUBLE_EQ(never.boosted_fraction, 0.0);
}

TEST(RtPredictor, NormalizedOutputsScaleFree) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  const RtPrediction p = pred.predict(condition(0.6, 2.0));
  const auto scales =
      profiler.pair_scales(wl::Benchmark::kKmeans, wl::Benchmark::kBfs);
  EXPECT_NEAR(p.norm_mean_rt, p.mean_rt / scales.scaled_base_primary, 1e-12);
}

TEST(RtPredictor, FeedbackIterationsConverge) {
  Profiler profiler(fast_config());
  RtPredictorConfig one;
  one.analytic_ea = true;
  one.feedback_iterations = 1;
  RtPredictorConfig three = one;
  three.feedback_iterations = 3;
  RtPredictor p1(profiler, nullptr, nullptr, one);
  RtPredictor p3(profiler, nullptr, nullptr, three);
  // With analytic EA the feedback loop only re-runs the simulator with a
  // fresh seed; results must be close (bounded stochastic drift).
  const double a = p1.predict(condition(0.7, 1.0)).mean_rt;
  const double b = p3.predict(condition(0.7, 1.0)).mean_rt;
  EXPECT_NEAR(a, b, 0.2 * a);
}

TEST(RtPredictor, PredictBatchBitIdenticalToSerialPredicts) {
  // The lockstep feedback loop only changes WHEN simulations run; every
  // per-condition config sequence — and so every output field — must equal
  // the serial path's bit for bit.  Conditions deliberately mix timeout
  // grid entries (shared streams in the batch engine) with off-grid loads,
  // and run both with and without the memo cache so the identity holds on
  // the uncached batch path too.
  Profiler profiler(fast_config());
  for (const bool memoize : {true, false}) {
    RtPredictorConfig cfg;
    cfg.analytic_ea = true;
    cfg.sim_queries = 1500;
    cfg.memoize = memoize;
    RtPredictor pred(profiler, nullptr, nullptr, cfg);

    std::vector<RuntimeCondition> conds;
    for (const double timeout : {0.0, 0.5, 2.0, 6.0})
      conds.push_back(condition(0.8, timeout));
    conds.push_back(condition(0.45, 1.0));

    // Serial first on a FRESH predictor so its memo state cannot leak into
    // the batch run's accounting (values would match anyway — the cache
    // returns exactly what a fresh simulation would).
    RtPredictor serial_pred(profiler, nullptr, nullptr, cfg);
    std::vector<RtPrediction> serial;
    for (const RuntimeCondition& c : conds)
      serial.push_back(serial_pred.predict(c));

    const std::vector<RtPrediction> batch = pred.predict_batch(conds);
    ASSERT_EQ(batch.size(), conds.size());
    for (std::size_t i = 0; i < conds.size(); ++i) {
      SCOPED_TRACE("condition " + std::to_string(i) +
                   (memoize ? " (memoized)" : " (uncached)"));
      EXPECT_EQ(batch[i].mean_rt, serial[i].mean_rt);
      EXPECT_EQ(batch[i].p95_rt, serial[i].p95_rt);
      EXPECT_EQ(batch[i].ea, serial[i].ea);
      EXPECT_EQ(batch[i].mean_queue_delay, serial[i].mean_queue_delay);
      EXPECT_EQ(batch[i].boosted_fraction, serial[i].boosted_fraction);
      EXPECT_EQ(batch[i].norm_mean_rt, serial[i].norm_mean_rt);
      EXPECT_EQ(batch[i].norm_p95_rt, serial[i].norm_p95_rt);
      EXPECT_EQ(batch[i].rung, serial[i].rung);
    }
  }
}

TEST(RtPredictor, ProbeRungMatchesPredictRung) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  const RuntimeCondition c = condition(0.7, 1.0);
  EXPECT_EQ(pred.probe_rung(c), pred.predict(c).rung);
}

TEST(RtPredictor, PredictBatchEmptyAndSingleton) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  cfg.sim_queries = 1500;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  EXPECT_TRUE(pred.predict_batch({}).empty());
  const auto one = pred.predict_batch({condition(0.7, 1.0)});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].mean_rt, pred.predict(condition(0.7, 1.0)).mean_rt);
}

}  // namespace
}  // namespace stac::core

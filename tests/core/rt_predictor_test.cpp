#include "core/rt_predictor.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::core {
namespace {

using profiler::Profiler;
using profiler::ProfilerConfig;
using profiler::RuntimeCondition;

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 300;
  cfg.warmup_completions = 40;
  cfg.max_windows = 1;
  cfg.accesses_per_sample = 800;
  return cfg;
}

RuntimeCondition condition(double util, double timeout) {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kBfs;
  c.util_primary = util;
  c.util_collocated = util;
  c.timeout_primary = timeout;
  c.timeout_collocated = timeout;
  c.seed = 77;
  return c;
}

TEST(RtPredictor, AnalyticModeNeedsNoModel) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  const RtPrediction p = pred.predict(condition(0.7, 1.0));
  EXPECT_GT(p.mean_rt, 0.0);
  EXPECT_GE(p.p95_rt, p.mean_rt);
  EXPECT_GT(p.ea, 0.0);
  EXPECT_LE(p.ea, 1.0);
  EXPECT_GT(p.norm_mean_rt, 0.5);  // residual speedup can push below 1 base
}

TEST(RtPredictor, LearnedModeRequiresModelAndLibrary) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;  // analytic_ea = false
  EXPECT_THROW(RtPredictor(profiler, nullptr, nullptr, cfg),
               ContractViolation);
}

TEST(RtPredictor, HigherUtilizationPredictsHigherRt) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  EXPECT_LT(pred.predict(condition(0.4, 6.0)).mean_rt,
            pred.predict(condition(0.9, 6.0)).mean_rt);
}

TEST(RtPredictor, BoostingPredictsImprovement) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  const RtPrediction never = pred.predict(condition(0.85, 6.0));
  const RtPrediction boost = pred.predict(condition(0.85, 0.5));
  EXPECT_LT(boost.mean_rt, never.mean_rt);
  EXPECT_GT(boost.boosted_fraction, 0.0);
  EXPECT_DOUBLE_EQ(never.boosted_fraction, 0.0);
}

TEST(RtPredictor, NormalizedOutputsScaleFree) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  const RtPrediction p = pred.predict(condition(0.6, 2.0));
  const auto scales =
      profiler.pair_scales(wl::Benchmark::kKmeans, wl::Benchmark::kBfs);
  EXPECT_NEAR(p.norm_mean_rt, p.mean_rt / scales.scaled_base_primary, 1e-12);
}

TEST(RtPredictor, FeedbackIterationsConverge) {
  Profiler profiler(fast_config());
  RtPredictorConfig one;
  one.analytic_ea = true;
  one.feedback_iterations = 1;
  RtPredictorConfig three = one;
  three.feedback_iterations = 3;
  RtPredictor p1(profiler, nullptr, nullptr, one);
  RtPredictor p3(profiler, nullptr, nullptr, three);
  // With analytic EA the feedback loop only re-runs the simulator with a
  // fresh seed; results must be close (bounded stochastic drift).
  const double a = p1.predict(condition(0.7, 1.0)).mean_rt;
  const double b = p3.predict(condition(0.7, 1.0)).mean_rt;
  EXPECT_NEAR(a, b, 0.2 * a);
}

}  // namespace
}  // namespace stac::core

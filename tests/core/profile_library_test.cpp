#include "core/profile_library.hpp"

#include <gtest/gtest.h>

namespace stac::core {
namespace {

using profiler::Profile;
using profiler::RuntimeCondition;

Profile make_profile(wl::Benchmark primary, wl::Benchmark collocated,
                     double util, double timeout) {
  Profile p;
  p.condition.primary = primary;
  p.condition.collocated = collocated;
  p.condition.util_primary = util;
  p.condition.timeout_primary = timeout;
  p.ea = util;  // marker for identification
  return p;
}

TEST(ProfileLibrary, EmptyReturnsNull) {
  ProfileLibrary lib;
  EXPECT_TRUE(lib.empty());
  EXPECT_EQ(lib.nearest(RuntimeCondition{}), nullptr);
}

TEST(ProfileLibrary, NearestByConditionDistance) {
  ProfileLibrary lib;
  lib.add(make_profile(wl::Benchmark::kKmeans, wl::Benchmark::kRedis, 0.3, 1.0));
  lib.add(make_profile(wl::Benchmark::kKmeans, wl::Benchmark::kRedis, 0.9, 1.0));
  RuntimeCondition q;
  q.primary = wl::Benchmark::kKmeans;
  q.collocated = wl::Benchmark::kRedis;
  q.util_primary = 0.85;
  q.timeout_primary = 1.0;
  const Profile* p = lib.nearest(q);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->ea, 0.9);
}

TEST(ProfileLibrary, PairingMatchBeatsCloserMismatch) {
  ProfileLibrary lib;
  // Wrong pairing but identical condition values.
  lib.add(make_profile(wl::Benchmark::kJacobi, wl::Benchmark::kBfs, 0.5, 2.0));
  // Right pairing but distant condition.
  lib.add(make_profile(wl::Benchmark::kKmeans, wl::Benchmark::kRedis, 0.95, 6.0));
  RuntimeCondition q;
  q.primary = wl::Benchmark::kKmeans;
  q.collocated = wl::Benchmark::kRedis;
  q.util_primary = 0.5;
  q.timeout_primary = 2.0;
  const Profile* p = lib.nearest(q);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->ea, 0.95);
}

TEST(ProfileLibrary, FallsBackToAnyPairing) {
  ProfileLibrary lib;
  lib.add(make_profile(wl::Benchmark::kJacobi, wl::Benchmark::kBfs, 0.4, 1.0));
  RuntimeCondition q;
  q.primary = wl::Benchmark::kSocial;
  q.collocated = wl::Benchmark::kRedis;
  EXPECT_NE(lib.nearest(q), nullptr);
}

TEST(ProfileLibrary, ConditionDistanceMetric) {
  RuntimeCondition a, b;
  a.util_primary = 0.5;
  b.util_primary = 0.8;
  EXPECT_NEAR(ProfileLibrary::condition_distance(a, b), 0.3, 1e-12);
  b = a;
  b.timeout_primary = a.timeout_primary + 6.0;
  EXPECT_NEAR(ProfileLibrary::condition_distance(a, b), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(ProfileLibrary::condition_distance(a, a), 0.0);
}

TEST(ProfileLibrary, NearestKOrdersByPairingThenDistance) {
  ProfileLibrary lib;
  lib.add(make_profile(wl::Benchmark::kKmeans, wl::Benchmark::kRedis, 0.50, 1.0));
  lib.add(make_profile(wl::Benchmark::kKmeans, wl::Benchmark::kRedis, 0.60, 1.0));
  lib.add(make_profile(wl::Benchmark::kKmeans, wl::Benchmark::kRedis, 0.90, 1.0));
  lib.add(make_profile(wl::Benchmark::kJacobi, wl::Benchmark::kBfs, 0.55, 1.0));
  RuntimeCondition q;
  q.primary = wl::Benchmark::kKmeans;
  q.collocated = wl::Benchmark::kRedis;
  q.util_primary = 0.55;
  q.timeout_primary = 1.0;
  const auto top = lib.nearest_k(q, 3);
  ASSERT_EQ(top.size(), 3u);
  // All pairing matches come before the mismatch; the two equidistant
  // profiles (0.50 and 0.60 around 0.55) may appear in either order.
  EXPECT_TRUE((top[0]->ea == 0.50 && top[1]->ea == 0.60) ||
              (top[0]->ea == 0.60 && top[1]->ea == 0.50));
  EXPECT_DOUBLE_EQ(top[2]->ea, 0.90);
  // k larger than the library clamps.
  EXPECT_EQ(lib.nearest_k(q, 10).size(), 4u);
}

TEST(ProfileLibrary, NearestKConsistentWithNearest) {
  ProfileLibrary lib;
  lib.add(make_profile(wl::Benchmark::kKnn, wl::Benchmark::kBfs, 0.3, 2.0));
  lib.add(make_profile(wl::Benchmark::kKnn, wl::Benchmark::kBfs, 0.8, 2.0));
  RuntimeCondition q;
  q.primary = wl::Benchmark::kKnn;
  q.collocated = wl::Benchmark::kBfs;
  q.util_primary = 0.75;
  q.timeout_primary = 2.0;
  EXPECT_EQ(lib.nearest_k(q, 1).front(), lib.nearest(q));
}

TEST(ProfileLibrary, AddAllAccumulates) {
  ProfileLibrary lib;
  std::vector<Profile> batch;
  batch.push_back(make_profile(wl::Benchmark::kKnn, wl::Benchmark::kBfs, 0.5, 1.0));
  batch.push_back(make_profile(wl::Benchmark::kKnn, wl::Benchmark::kBfs, 0.6, 1.0));
  lib.add_all(std::move(batch));
  EXPECT_EQ(lib.size(), 2u);
}

}  // namespace
}  // namespace stac::core

#include "core/stac_manager.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac::core {
namespace {

using profiler::RuntimeCondition;

StacOptions tiny_options() {
  StacOptions opts;
  opts.profile_budget = 6;
  opts.profiler.target_completions = 250;
  opts.profiler.warmup_completions = 30;
  opts.profiler.max_windows = 1;
  opts.profiler.accesses_per_sample = 600;
  opts.model.deep_forest.mgs.window_sizes = {5};
  opts.model.deep_forest.mgs.estimators = 6;
  opts.model.deep_forest.cascade.levels = 1;
  opts.model.deep_forest.cascade.estimators = 10;
  opts.predictor.sim_queries = 1500;
  opts.explorer.grid = {0.0, 2.0, 6.0};
  return opts;
}

RuntimeCondition cond() {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKnn;
  c.collocated = wl::Benchmark::kBfs;
  c.util_primary = 0.8;
  c.util_collocated = 0.8;
  c.timeout_primary = 1.0;
  c.timeout_collocated = 1.0;
  c.seed = 12;
  return c;
}

TEST(StacManager, UsableBeforeCalibrationOnlyForEvaluate) {
  StacManager mgr(tiny_options());
  EXPECT_FALSE(mgr.calibrated());
  EXPECT_THROW((void)mgr.predict(cond()), ContractViolation);
  EXPECT_THROW((void)mgr.recommend(cond()), ContractViolation);
  // Ground-truth evaluation needs no model.
  const auto r = mgr.evaluate(cond(), 6.0, 6.0, 250);
  EXPECT_EQ(r.per_workload.size(), 2u);
}

TEST(StacManager, CalibrateThenFullApi) {
  StacManager mgr(tiny_options());
  mgr.calibrate(wl::Benchmark::kKnn, wl::Benchmark::kBfs);
  EXPECT_TRUE(mgr.calibrated());
  EXPECT_GE(mgr.library().size(), 6u);

  const auto pred = mgr.predict(cond());
  EXPECT_GT(pred.mean_rt, 0.0);
  EXPECT_GT(pred.ea, 0.0);

  const auto rec = mgr.recommend(cond());
  const auto& grid = tiny_options().explorer.grid;
  EXPECT_NE(std::find(grid.begin(), grid.end(),
                      rec.selection.timeout_primary),
            grid.end());
}

TEST(StacManager, CalibratesAndPredictsUnderModeledTimeEa) {
  // The modeled-time EA labels feed the same Stage-2/Stage-3 pipeline; the
  // full calibrate -> predict -> recommend path must work in either mode.
  StacOptions opts = tiny_options();
  opts.profiler.ea_mode = profiler::EaMode::kModeledTime;
  StacManager mgr(opts);
  mgr.calibrate(wl::Benchmark::kKnn, wl::Benchmark::kBfs);
  EXPECT_TRUE(mgr.calibrated());
  const auto pred = mgr.predict(cond());
  EXPECT_GT(pred.mean_rt, 0.0);
  EXPECT_GT(pred.ea, 0.0);
  EXPECT_LE(pred.ea, 1.0);
  const auto rec = mgr.recommend(cond());
  const auto& grid = opts.explorer.grid;
  EXPECT_NE(std::find(grid.begin(), grid.end(),
                      rec.selection.timeout_primary),
            grid.end());
}

TEST(StacManager, CalibrationAccumulatesPairings) {
  StacManager mgr(tiny_options());
  mgr.calibrate(wl::Benchmark::kKnn, wl::Benchmark::kBfs);
  const std::size_t first = mgr.library().size();
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);
  EXPECT_GT(mgr.library().size(), first);
  // Both pairings answer predictions after the second calibration.
  RuntimeCondition c2 = cond();
  c2.primary = wl::Benchmark::kKmeans;
  c2.collocated = wl::Benchmark::kRedis;
  EXPECT_GT(mgr.predict(c2).mean_rt, 0.0);
  EXPECT_GT(mgr.predict(cond()).mean_rt, 0.0);
}

}  // namespace
}  // namespace stac::core

// The Stage-3 simulation memoizer: hits must be bit-identical stand-ins
// for fresh simulations, chaos must bypass the cache, and a policy sweep
// must actually reuse (the ISSUE-4 acceptance line: >50% hit rate on a
// 25-cell grid).
#include "core/rt_prediction_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/fault_injection.hpp"
#include "core/policy_explorer.hpp"
#include "core/rt_predictor.hpp"
#include "obs/metrics.hpp"

namespace stac::core {
namespace {

using profiler::Profiler;
using profiler::ProfilerConfig;
using profiler::RuntimeCondition;
using queueing::GGkConfig;
using queueing::GGkResult;

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 300;
  cfg.warmup_completions = 40;
  cfg.max_windows = 1;
  cfg.accesses_per_sample = 800;
  return cfg;
}

RuntimeCondition condition(double util, double timeout) {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kBfs;
  c.util_primary = util;
  c.util_collocated = util;
  c.timeout_primary = timeout;
  c.timeout_collocated = timeout;
  c.seed = 77;
  return c;
}

GGkConfig small_sim(std::uint64_t seed) {
  GGkConfig c;
  c.utilization = 0.8;
  c.servers = 2;
  c.service_cv = 1.0;
  c.timeout_rel = 0.5;
  c.effective_allocation = 0.6;
  c.allocation_ratio = 3.0;
  c.queries = 2000;
  c.warmup = 100;
  c.seed = seed;
  return c;
}

TEST(RtPredictionCache, HitReturnsBitIdenticalResult) {
  RtPredictionCache cache;
  const GGkConfig c = small_sim(5);
  const auto first = cache.simulate(c);
  const auto second = cache.simulate(c);
  EXPECT_EQ(first.get(), second.get());  // the very same object
  const GGkResult fresh = queueing::simulate_ggk(c);
  EXPECT_EQ(first->completed, fresh.completed);
  EXPECT_EQ(first->response_times.mean(), fresh.response_times.mean());
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
}

TEST(RtPredictionCache, KeyIsBitExactOverEveryField) {
  RtPredictionCache cache;
  GGkConfig c = small_sim(5);
  (void)cache.simulate(c);
  // Any field nudge — including the engine flag and a one-ulp double
  // change — must miss.
  GGkConfig c2 = c;
  c2.seed += 1;
  GGkConfig c3 = c;
  c3.utilization = std::nextafter(c3.utilization, 1.0);
  GGkConfig c4 = c;
  c4.fast_events = !c4.fast_events;
  GGkConfig c5 = c;
  c5.class_level_boost = !c5.class_level_boost;
  for (const GGkConfig& v : {c2, c3, c4, c5}) (void)cache.simulate(v);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 5u);
  EXPECT_EQ(cache.size(), 5u);
}

TEST(RtPredictionCache, DisabledCacheNeverStores) {
  RtPredictionCache cache(/*enabled=*/false);
  const GGkConfig c = small_sim(5);
  (void)cache.simulate(c);
  (void)cache.simulate(c);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(RtPredictionCache, ArmedChaosBypassesInBothDirections) {
  RtPredictionCache cache;
  const GGkConfig c = small_sim(5);
  const auto clean = cache.simulate(c);  // miss, stored
  {
    FaultPlan plan;
    plan.seed = 99;
    plan.add({.point = "ggk.service",
              .action = FaultAction::kLatency,
              .probability = 0.3,
              .latency = 5.0});
    FaultScope scope(plan);
    const auto chaotic = cache.simulate(c);
    // Not served from the cache (the chaotic run really injected), and the
    // chaotic result did not overwrite the clean entry.
    EXPECT_GT(chaotic->latency_injections, 0u);
    EXPECT_NE(chaotic.get(), clean.get());
  }
  const auto after = cache.simulate(c);
  EXPECT_EQ(after.get(), clean.get());
  EXPECT_EQ(after->latency_injections, 0u);
}

TEST(RtPredictionCache, MemoizedPredictorMatchesUnmemoized) {
  Profiler profiler(fast_config());
  RtPredictorConfig on;
  on.analytic_ea = true;
  on.memoize = true;
  RtPredictorConfig off = on;
  off.memoize = false;
  RtPredictor pon(profiler, nullptr, nullptr, on);
  RtPredictor poff(profiler, nullptr, nullptr, off);
  for (const double timeout : {0.5, 2.0}) {
    const RtPrediction a = pon.predict(condition(0.8, timeout));
    const RtPrediction b = poff.predict(condition(0.8, timeout));
    EXPECT_EQ(a.mean_rt, b.mean_rt);
    EXPECT_EQ(a.p95_rt, b.p95_rt);
    EXPECT_EQ(a.mean_queue_delay, b.mean_queue_delay);
    EXPECT_EQ(a.boosted_fraction, b.boosted_fraction);
  }
  EXPECT_EQ(poff.cache_stats().hits + poff.cache_stats().misses, 0u);
}

TEST(RtPredictionCache, CapacityBoundsGrowthViaEpochFlush) {
  // A drifting-condition controller keys a fresh config every epoch; the
  // capacity bound (flush-at-capacity) must keep the map finite while the
  // "rt_cache.size" gauge tracks the live entry count.
  RtPredictionCache cache(/*enabled=*/true, /*capacity=*/8);
  EXPECT_EQ(cache.capacity(), 8u);
  auto& gauge = obs::MetricsRegistry::global().gauge("rt_cache.size");
  for (std::uint64_t i = 0; i < 50; ++i) {
    GGkConfig c = small_sim(1000 + i);  // 50 distinct keys
    c.queries = 50;                     // keep each miss cheap
    c.warmup = 5;
    (void)cache.simulate(c);
    ASSERT_LE(cache.size(), 8u) << "after insert " << i;
    EXPECT_EQ(gauge.value(), static_cast<double>(cache.size()));
  }
  EXPECT_EQ(cache.stats().misses, 50u);
  // Entries cached since the last flush still hit.
  GGkConfig again = small_sim(1000 + 49);
  again.queries = 50;
  again.warmup = 5;
  (void)cache.simulate(again);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(RtPredictionCache, ZeroCapacityClampsToOne) {
  RtPredictionCache cache(true, 0);
  EXPECT_EQ(cache.capacity(), 1u);
  GGkConfig c = small_sim(3);
  c.queries = 50;
  c.warmup = 5;
  (void)cache.simulate(c);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RtPredictionCache, MemoizeCapacityKnobReachesThePredictorCache) {
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  cfg.sim_queries = 200;
  cfg.sim_warmup = 20;
  cfg.memoize_capacity = 4;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  for (int i = 0; i < 12; ++i)
    (void)pred.predict(condition(0.55 + 0.03 * i, 1.0));
  EXPECT_LE(pred.cache_size(), 4u);
  EXPECT_GT(pred.cache_stats().misses, 0u);
}

TEST(RtPredictionCache, PolicySweepReusesMostSimulations) {
  // The ISSUE-4 acceptance bar: on the paper's 25-cell grid the memoizer
  // absorbs >50% of Stage-3 simulations (seeds are cell-independent and,
  // with analytic EA, collocated configs repeat across rows).
  Profiler profiler(fast_config());
  RtPredictorConfig cfg;
  cfg.analytic_ea = true;
  RtPredictor pred(profiler, nullptr, nullptr, cfg);
  ExplorerConfig ex;  // 5x5 grid
  const PolicyExploration out = explore_policies(pred, condition(0.8, 0.0), ex);
  EXPECT_EQ(out.predictions_made, 50u);
  const auto st = pred.cache_stats();
  EXPECT_GT(st.hits + st.misses, 0u);
  EXPECT_GT(st.hit_rate(), 0.5) << "hits=" << st.hits
                                << " misses=" << st.misses;
}

}  // namespace
}  // namespace stac::core

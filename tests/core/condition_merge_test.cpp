// Fleet condition aggregation: the merge identities the fleet control
// plane is built on.  N=1 must be a bitwise no-op (fleet-of-one ==
// standalone controller), and k-way merges must satisfy the exact count /
// weighted-mean identities regardless of how a stream is split.
#include "core/condition_merge.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace stac::core {
namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

WorkloadMoments make_moments(std::uint64_t seed, std::size_t completions,
                             double rate) {
  WorkloadMoments m;
  Rng rng(seed);
  m.completions = completions;
  m.arrivals = completions + 3;
  m.timeouts = completions / 4;
  m.boosted = completions / 5;
  m.span = 30.0;
  m.arrival_rate = rate;
  for (std::size_t i = 0; i < completions; ++i) {
    m.service.add(rng.lognormal_mean_cv(1.0, 0.7));
    m.queue.add(rng.uniform() * 0.4);
  }
  return m;
}

TEST(ConditionMerge, SingleShardMergeIsBitIdentical) {
  const WorkloadMoments m = make_moments(7, 64, 1.6);
  const std::vector<WorkloadMoments> shards = {m};
  const MergedWorkloadEstimate out = merge_moments(shards, 2, 20);

  // Counts and rate come through untouched.
  EXPECT_EQ(out.arrivals, m.arrivals);
  EXPECT_EQ(out.completions, m.completions);
  EXPECT_EQ(out.timeouts, m.timeouts);
  EXPECT_TRUE(bit_equal(out.arrival_rate, m.arrival_rate));

  // The Welford accumulators were copied verbatim into the empty merge
  // target, so every derived moment is bit-identical to the shard's own.
  EXPECT_TRUE(bit_equal(out.mean_service, m.service.mean()));
  EXPECT_TRUE(bit_equal(out.service_cv, m.service.cv()));
  EXPECT_TRUE(bit_equal(out.mean_queue_delay, m.queue.mean()));
  EXPECT_TRUE(bit_equal(
      out.boost_fraction,
      static_cast<double>(m.boosted) / static_cast<double>(m.completions)));
  EXPECT_TRUE(
      bit_equal(out.utilization, m.arrival_rate * m.service.mean() / 2.0));
  EXPECT_TRUE(out.warm);
}

TEST(ConditionMerge, TwoShardSplitSatisfiesWeightedIdentities) {
  // One stream of samples, split across two shards at an arbitrary point:
  // the merged estimate must see exact total counts, the exact rate sum,
  // and the count-weighted mean of the two shards' service means.
  Rng rng(99);
  std::vector<double> service(120), queue(120);
  for (std::size_t i = 0; i < service.size(); ++i) {
    service[i] = rng.lognormal_mean_cv(2.0, 0.5);
    queue[i] = rng.uniform();
  }
  const std::size_t cut = 47;
  WorkloadMoments a, b;
  a.span = b.span = 30.0;
  a.arrival_rate = 0.9;
  b.arrival_rate = 0.7;
  for (std::size_t i = 0; i < service.size(); ++i) {
    WorkloadMoments& m = i < cut ? a : b;
    m.service.add(service[i]);
    m.queue.add(queue[i]);
    ++m.completions;
    ++m.arrivals;
  }
  a.boosted = 5;
  b.boosted = 11;

  const std::vector<WorkloadMoments> shards = {a, b};
  const MergedWorkloadEstimate out = merge_moments(shards, 4, 20);

  EXPECT_EQ(out.completions, service.size());
  EXPECT_EQ(out.arrivals, service.size());
  EXPECT_DOUBLE_EQ(out.arrival_rate, 1.6);

  const double na = static_cast<double>(a.completions);
  const double nb = static_cast<double>(b.completions);
  const double weighted_mean =
      (na * a.service.mean() + nb * b.service.mean()) / (na + nb);
  EXPECT_NEAR(out.mean_service, weighted_mean, 1e-12);
  EXPECT_DOUBLE_EQ(out.boost_fraction, 16.0 / 120.0);
  EXPECT_NEAR(out.utilization, 1.6 * weighted_mean / 4.0, 1e-12);

  // The merged second moment matches a sequential pass over the whole
  // stream (parallel-Welford vs sequential Welford agree to rounding).
  StreamingStats all;
  for (const double s : service) all.add(s);
  EXPECT_NEAR(out.mean_service, all.mean(), 1e-12);
  EXPECT_NEAR(out.service_cv, all.cv(), 1e-9);
}

TEST(ConditionMerge, MergeIsPermutationInsensitiveOnCounts) {
  const WorkloadMoments a = make_moments(1, 40, 1.0);
  const WorkloadMoments b = make_moments(2, 25, 0.5);
  const WorkloadMoments c = make_moments(3, 10, 0.25);
  const std::vector<WorkloadMoments> abc = {a, b, c};
  const std::vector<WorkloadMoments> cba = {c, b, a};
  const MergedWorkloadEstimate x = merge_moments(abc, 6, 20);
  const MergedWorkloadEstimate y = merge_moments(cba, 6, 20);
  EXPECT_EQ(x.completions, y.completions);
  EXPECT_EQ(x.arrivals, y.arrivals);
  EXPECT_NEAR(x.mean_service, y.mean_service, 1e-12);
  EXPECT_NEAR(x.arrival_rate, y.arrival_rate, 1e-12);
  EXPECT_EQ(x.warm, y.warm);
}

TEST(ConditionMerge, EmptySpanYieldsColdZeroEstimateNeverNaN) {
  const std::vector<WorkloadMoments> none;
  const MergedWorkloadEstimate out = merge_moments(none, 2, 20);
  EXPECT_FALSE(out.warm);
  EXPECT_EQ(out.completions, 0u);
  EXPECT_EQ(out.arrival_rate, 0.0);
  EXPECT_TRUE(std::isfinite(out.mean_service));
  EXPECT_TRUE(std::isfinite(out.service_cv));
  EXPECT_TRUE(std::isfinite(out.mean_queue_delay));
  EXPECT_TRUE(std::isfinite(out.boost_fraction));
  EXPECT_TRUE(std::isfinite(out.utilization));
}

TEST(ConditionMerge, WarmBarAppliesToPooledCompletions) {
  // Two shards each below the bar together clear it: warmth is a fleet
  // property, not a per-shard one.
  const WorkloadMoments a = make_moments(5, 12, 0.5);
  const WorkloadMoments b = make_moments(6, 12, 0.5);
  const std::vector<WorkloadMoments> shards = {a, b};
  EXPECT_FALSE(merge_moments({&a, 1}, 2, 20).warm);
  EXPECT_TRUE(merge_moments(shards, 4, 20).warm);
}

TEST(ConditionMerge, RequiresPositiveCapacity) {
  const std::vector<WorkloadMoments> none;
  EXPECT_THROW((void)merge_moments(none, 0, 1), ContractViolation);
}

}  // namespace
}  // namespace stac::core

#include "core/baselines.hpp"

#include <gtest/gtest.h>

namespace stac::core {
namespace {

using profiler::Profiler;
using profiler::ProfilerConfig;
using profiler::RuntimeCondition;

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 300;
  cfg.warmup_completions = 40;
  return cfg;
}

RuntimeCondition pairing(wl::Benchmark a, wl::Benchmark b) {
  RuntimeCondition c;
  c.primary = a;
  c.collocated = b;
  c.util_primary = 0.85;
  c.util_collocated = 0.85;
  c.seed = 6;
  return c;
}

TEST(Baselines, NoSharingNeverBoosts) {
  const PolicySelection s = select_no_sharing();
  EXPECT_DOUBLE_EQ(s.timeout_primary, cat::kNeverBoostTimeout);
  EXPECT_DOUBLE_EQ(s.timeout_collocated, cat::kNeverBoostTimeout);
}

TEST(Baselines, EvaluatePolicyRunsTestbed) {
  Profiler profiler(fast_config());
  const auto r = evaluate_policy(
      profiler, pairing(wl::Benchmark::kKmeans, wl::Benchmark::kBfs), 6.0,
      6.0, 300);
  EXPECT_EQ(r.per_workload.size(), 2u);
  EXPECT_EQ(r.per_workload[0].completed, 300u);
  EXPECT_GT(combined_norm_p95(
                profiler, pairing(wl::Benchmark::kKmeans, wl::Benchmark::kBfs),
                r),
            0.0);
}

TEST(Baselines, StaticPicksAnAlwaysOrNeverCombo) {
  Profiler profiler(fast_config());
  const PolicySelection s = select_static(
      profiler, pairing(wl::Benchmark::kKmeans, wl::Benchmark::kRedis), 300);
  EXPECT_EQ(s.name, "static");
  EXPECT_TRUE(s.timeout_primary == 0.0 ||
              s.timeout_primary == cat::kNeverBoostTimeout);
  EXPECT_TRUE(s.timeout_collocated == 0.0 ||
              s.timeout_collocated == cat::kNeverBoostTimeout);
}

TEST(Baselines, DcatGrantsSharedWaysToGreaterSpeedup) {
  Profiler profiler(fast_config());
  // kmeans's MRC gains more from 3 ways than spstream's streaming-heavy
  // curve (verify the premise, then the selection).
  const double sp_kmeans = profiler.model(wl::Benchmark::kKmeans).speedup(3.0);
  const double sp_spstream =
      profiler.model(wl::Benchmark::kSpstream).speedup(3.0);
  const PolicySelection s = select_dcat(
      profiler, pairing(wl::Benchmark::kKmeans, wl::Benchmark::kSpstream));
  EXPECT_EQ(s.name, "dCat");
  if (sp_kmeans >= sp_spstream) {
    EXPECT_DOUBLE_EQ(s.timeout_primary, 0.0);
    EXPECT_DOUBLE_EQ(s.timeout_collocated, cat::kNeverBoostTimeout);
  } else {
    EXPECT_DOUBLE_EQ(s.timeout_primary, cat::kNeverBoostTimeout);
    EXPECT_DOUBLE_EQ(s.timeout_collocated, 0.0);
  }
  // Exactly one side holds the shared ways.
  EXPECT_NE(s.timeout_primary, s.timeout_collocated);
}

TEST(Baselines, DynaSprintTunesAtLowUtilization) {
  Profiler profiler(fast_config());
  const PolicySelection s = select_dynasprint(
      profiler, pairing(wl::Benchmark::kKmeans, wl::Benchmark::kBfs),
      {0.5, 2.0}, 0.3, 200);
  EXPECT_EQ(s.name, "dynaSprint");
  EXPECT_TRUE(s.timeout_primary == 0.5 || s.timeout_primary == 2.0);
  EXPECT_TRUE(s.timeout_collocated == 0.5 || s.timeout_collocated == 2.0);
}

TEST(Baselines, DynaSprintRequiresGrid) {
  Profiler profiler(fast_config());
  EXPECT_THROW(
      select_dynasprint(profiler,
                        pairing(wl::Benchmark::kKmeans, wl::Benchmark::kBfs),
                        {}, 0.3, 100),
      ContractViolation);
}

}  // namespace
}  // namespace stac::core

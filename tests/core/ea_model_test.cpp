#include "core/ea_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace stac::core {
namespace {

using profiler::Profile;
using profiler::Profiler;
using profiler::ProfilerConfig;
using profiler::RuntimeCondition;

ProfilerConfig fast_config() {
  ProfilerConfig cfg;
  cfg.target_completions = 300;
  cfg.warmup_completions = 40;
  cfg.max_windows = 2;
  cfg.accesses_per_sample = 800;
  return cfg;
}

std::vector<Profile> collect_profiles(std::size_t n) {
  Profiler profiler(fast_config());
  Rng rng(17);
  std::vector<RuntimeCondition> conditions;
  for (std::size_t i = 0; i < n; ++i)
    conditions.push_back(random_condition(wl::Benchmark::kKmeans,
                                          wl::Benchmark::kRedis,
                                          profiler::ConditionRanges{}, rng));
  return profiler.profile_conditions(conditions);
}

EaModelConfig small_df_config(EaBackend backend) {
  EaModelConfig cfg;
  cfg.backend = backend;
  cfg.deep_forest.mgs.window_sizes = {5, 10};
  cfg.deep_forest.mgs.estimators = 8;
  cfg.deep_forest.cascade.levels = 2;
  cfg.deep_forest.cascade.estimators = 15;
  cfg.forest.estimators = 30;
  return cfg;
}

class EaModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { profiles_ = new auto(collect_profiles(12)); }
  static void TearDownTestSuite() {
    delete profiles_;
    profiles_ = nullptr;
  }
  static std::vector<Profile>* profiles_;
};

std::vector<Profile>* EaModelTest::profiles_ = nullptr;

TEST_F(EaModelTest, AllBackendsTrainAndPredictInRange) {
  ASSERT_GE(profiles_->size(), 8u);
  for (EaBackend backend :
       {EaBackend::kDeepForest, EaBackend::kCascadeOnly,
        EaBackend::kSimpleForest, EaBackend::kTree, EaBackend::kLinear}) {
    EaModel model(small_df_config(backend));
    model.fit(*profiles_);
    EXPECT_TRUE(model.trained());
    for (const auto& p : *profiles_) {
      const double ea = model.predict(model.make_sample(p));
      EXPECT_GT(ea, 0.0);
      EXPECT_LE(ea, 1.0);
    }
  }
}

TEST_F(EaModelTest, DeepForestRecallsTrainingTargets) {
  EaModel model(small_df_config(EaBackend::kDeepForest));
  model.fit(*profiles_);
  double mae = 0.0;
  for (const auto& p : *profiles_)
    mae += std::abs(model.predict(model.make_sample(p)) - p.ea_boost);
  EXPECT_LT(mae / static_cast<double>(profiles_->size()), 0.15);
}

TEST_F(EaModelTest, ConceptsOnlyForDeepBackends) {
  EaModel deep(small_df_config(EaBackend::kDeepForest));
  deep.fit(*profiles_);
  const auto c = deep.concepts(deep.make_sample(profiles_->front()));
  EXPECT_FALSE(c.empty());

  EaModel forest(small_df_config(EaBackend::kSimpleForest));
  forest.fit(*profiles_);
  EXPECT_THROW((void)forest.concepts(forest.make_sample(profiles_->front())),
               ContractViolation);
}

TEST_F(EaModelTest, TabularBackendsIgnoreImage) {
  EaModel model(small_df_config(EaBackend::kSimpleForest));
  const auto sample = model.make_sample(profiles_->front());
  EXPECT_TRUE(sample.image.empty());
  EaModel deep(small_df_config(EaBackend::kDeepForest));
  const auto dsample = deep.make_sample(profiles_->front());
  EXPECT_FALSE(dsample.image.empty());
}

TEST_F(EaModelTest, ShuffledRowsStillTrainable) {
  EaModelConfig cfg = small_df_config(EaBackend::kDeepForest);
  cfg.shuffle_counter_rows = true;
  EaModel model(cfg);
  model.fit(*profiles_);
  EXPECT_TRUE(model.trained());
}

TEST(EaModel, PredictBeforeFitThrows) {
  EaModel model;
  EXPECT_THROW((void)model.predict(ml::ProfileSample{}), ContractViolation);
}

// ---- PR-9: warm-start refit + deep copies (the RefitExecutor contract) ----

TEST_F(EaModelTest, WarmRefitKeepsParityAcrossBackends) {
  ASSERT_GE(profiles_->size(), 12u);
  const std::vector<Profile> head(profiles_->begin(), profiles_->begin() + 8);
  for (EaBackend backend : {EaBackend::kDeepForest, EaBackend::kSimpleForest,
                            EaBackend::kLinear}) {
    EaModel warm(small_df_config(backend));
    // Untrained model: refit falls back to a full fit.
    warm.refit_incremental(head);
    EXPECT_TRUE(warm.trained());
    // Grown, append-only library snapshot: the warm path.
    warm.refit_incremental(*profiles_);

    EaModel cold(small_df_config(backend));
    cold.fit(*profiles_);
    auto rmse = [&](const EaModel& m) {
      double sq = 0.0;
      for (const auto& p : *profiles_) {
        const double d = m.predict(m.make_sample(p)) - p.ea_boost;
        sq += d * d;
      }
      return std::sqrt(sq / static_cast<double>(profiles_->size()));
    };
    EXPECT_LE(rmse(warm), rmse(cold) + 0.05);
    for (const auto& p : *profiles_) {
      const double ea = warm.predict(warm.make_sample(p));
      EXPECT_GT(ea, 0.0);
      EXPECT_LE(ea, 1.0);
    }
  }
}

TEST_F(EaModelTest, CopyIsDeepAndPredictsIdentically) {
  EaModel master(small_df_config(EaBackend::kDeepForest));
  master.fit(*profiles_);
  const EaModel snapshot(master);  // what the executor publishes
  for (const auto& p : *profiles_)
    EXPECT_EQ(snapshot.predict(snapshot.make_sample(p)),
              master.predict(master.make_sample(p)));
  // Mutating the master (a later warm refit) must not touch the snapshot.
  std::vector<double> before;
  for (const auto& p : *profiles_)
    before.push_back(snapshot.predict(snapshot.make_sample(p)));
  master.refit_incremental(*profiles_);
  std::size_t i = 0;
  for (const auto& p : *profiles_)
    EXPECT_EQ(snapshot.predict(snapshot.make_sample(p)), before[i++]);
}

}  // namespace
}  // namespace stac::core

#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace stac::ml {
namespace {

/// Noisy nonlinear target: y = sin(4a) + 0.5b + noise.
Dataset wavy_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(0, 2);
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    x.append_row(std::vector<double>{a, b});
    y.push_back(std::sin(4.0 * a) + 0.5 * b + rng.normal(0.0, 0.05));
  }
  return Dataset(std::move(x), std::move(y));
}

double test_mae(const RandomForest& rf, const Dataset& test) {
  double mae = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i)
    mae += std::abs(rf.predict(test.row(i)) - test.target(i));
  return mae / static_cast<double>(test.size());
}

TEST(RandomForest, FitsNonlinearFunction) {
  RandomForest rf(ForestConfig{.estimators = 50, .seed = 1});
  const Dataset train = wavy_dataset(600, 1);
  const Dataset test = wavy_dataset(200, 2);
  rf.fit(train);
  EXPECT_LT(test_mae(rf, test), 0.12);
}

TEST(RandomForest, EnsembleBeatsSingleTreeOnNoise) {
  const Dataset train = wavy_dataset(400, 3);
  const Dataset test = wavy_dataset(200, 4);
  RandomForest rf(ForestConfig{.estimators = 60, .seed = 5});
  rf.fit(train);
  RandomForest single(ForestConfig{.estimators = 1, .seed = 5});
  single.fit(train);
  EXPECT_LT(test_mae(rf, test), test_mae(single, test));
}

TEST(RandomForest, OobPredictionsCoverTrainingRows) {
  RandomForest rf(ForestConfig{.estimators = 30, .seed = 7});
  const Dataset train = wavy_dataset(200, 5);
  rf.fit(train);
  const auto& oob = rf.oob_predictions();
  ASSERT_EQ(oob.size(), 200u);
  // OOB error should be sane (not catastrophically off).
  double mae = 0.0;
  for (std::size_t i = 0; i < oob.size(); ++i)
    mae += std::abs(oob[i] - train.target(i));
  EXPECT_LT(mae / 200.0, 0.2);
}

TEST(RandomForest, DeterministicForSeedEvenParallel) {
  const Dataset train = wavy_dataset(300, 6);
  RandomForest a(ForestConfig{.estimators = 20, .seed = 11, .parallel = true});
  RandomForest b(ForestConfig{.estimators = 20, .seed = 11, .parallel = false});
  a.fit(train);
  b.fit(train);
  for (double v = 0.05; v < 1.0; v += 0.1) {
    const std::vector<double> x{v, 0.5};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(RandomForest, CompletelyRandomModeTrains) {
  RandomForest rf(ForestConfig{
      .estimators = 40, .split_mode = SplitMode::kCompletelyRandom,
      .seed = 13});
  const Dataset train = wavy_dataset(400, 7);
  const Dataset test = wavy_dataset(100, 8);
  rf.fit(train);
  EXPECT_LT(test_mae(rf, test), 0.25);
}

TEST(RandomForest, FeatureImportanceAggregates) {
  RandomForest rf(ForestConfig{.estimators = 20, .seed = 15});
  rf.fit(wavy_dataset(300, 9));
  const auto imp = rf.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], imp[1]);  // sin(4a) dominates 0.5b
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForest rf;
  EXPECT_THROW((void)rf.predict(std::vector<double>{0.5, 0.5}), ContractViolation);
  EXPECT_THROW((void)rf.oob_predictions(), ContractViolation);
}

TEST(RandomForest, BootstrapFractionValidated) {
  EXPECT_THROW(RandomForest(ForestConfig{.bootstrap_fraction = 0.0}),
               ContractViolation);
  EXPECT_THROW(RandomForest(ForestConfig{.estimators = 0}),
               ContractViolation);
}

// ---- PR-9: flattened SoA inference + warm-start refit ---------------------

TEST(RandomForest, FlattenedPredictBitIdenticalToPointerWalk) {
  for (const std::uint64_t seed : {1ull, 9ull, 23ull}) {
    for (const SplitMode mode :
         {SplitMode::kSqrtFeatures, SplitMode::kCompletelyRandom}) {
      const Dataset train = wavy_dataset(220, seed);
      ForestConfig cfg{.estimators = 18, .split_mode = mode, .seed = seed};
      ForestConfig ptr_cfg = cfg;
      ptr_cfg.flatten = false;
      RandomForest flat(cfg), pointer(ptr_cfg);
      flat.fit(train);
      pointer.fit(train);
      // OOB estimates (the cascade's concept source) and fresh predictions
      // must agree bit for bit — the flat walk uses identical comparisons
      // and identical tree-order accumulation.
      EXPECT_EQ(flat.oob_predictions(), pointer.oob_predictions());
      const Dataset test = wavy_dataset(90, seed + 1000);
      for (std::size_t i = 0; i < test.size(); ++i) {
        const double a = flat.predict(test.row(i));
        const double b = pointer.predict(test.row(i));
        EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
      }
      // The batch (level-major) walk is the same function.
      const auto batch = flat.predict(test.features());
      const auto scalar = pointer.predict(test.features());
      EXPECT_EQ(batch, scalar);
    }
  }
}

TEST(RandomForest, FlattenedIdentityHoldsAcrossWarmRefit) {
  Dataset data = wavy_dataset(200, 31);
  ForestConfig cfg{.estimators = 16, .seed = 31};
  ForestConfig ptr_cfg = cfg;
  ptr_cfg.flatten = false;
  RandomForest flat(cfg), pointer(ptr_cfg);
  flat.fit(data);
  pointer.fit(data);
  const Dataset extra = wavy_dataset(60, 32);
  for (std::size_t i = 0; i < extra.size(); ++i)
    data.add_row(extra.row(i), extra.target(i));
  flat.refit_incremental(data);
  pointer.refit_incremental(data);
  const Dataset test = wavy_dataset(80, 33);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double a = flat.predict(test.row(i));
    const double b = pointer.predict(test.row(i));
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
  }
  EXPECT_EQ(flat.oob_predictions(), pointer.oob_predictions());
}

TEST(RandomForest, WarmRefitParityWithColdFit) {
  const Dataset grown = wavy_dataset(500, 41);
  std::vector<std::size_t> head(400);
  for (std::size_t i = 0; i < head.size(); ++i) head[i] = i;
  Dataset base = grown.subset(head);
  RandomForest warm(ForestConfig{.estimators = 32, .seed = 42});
  warm.fit(base);
  for (std::size_t i = 400; i < grown.size(); ++i)
    base.add_row(grown.row(i), grown.target(i));
  // Two refit rounds: the round-robin window advances, so different tree
  // subsets retrain each call.
  warm.refit_incremental(base);
  warm.refit_incremental(base);
  EXPECT_EQ(warm.trained_rows(), 500u);
  EXPECT_EQ(warm.refit_rounds(), 2u);
  RandomForest cold(ForestConfig{.estimators = 32, .seed = 42});
  cold.fit(base);
  const Dataset test = wavy_dataset(200, 43);
  // The accuracy-parity contract: warm-start is an approximation, but it
  // must track a full refit within a small absolute margin.
  EXPECT_LE(test_mae(warm, test), test_mae(cold, test) + 0.03);
}

TEST(RandomForest, WarmRefitIsDeterministic) {
  auto run = [] {
    Dataset d = wavy_dataset(240, 51);
    RandomForest rf(ForestConfig{.estimators = 24, .seed = 52});
    rf.fit(d);
    const Dataset extra = wavy_dataset(50, 53);
    for (std::size_t i = 0; i < extra.size(); ++i)
      d.add_row(extra.row(i), extra.target(i));
    rf.refit_incremental(d);
    rf.refit_incremental(d);
    return rf;
  };
  const RandomForest a = run();
  const RandomForest b = run();
  const Dataset test = wavy_dataset(60, 54);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double pa = a.predict(test.row(i));
    const double pb = b.predict(test.row(i));
    EXPECT_EQ(std::memcmp(&pa, &pb, sizeof(double)), 0);
  }
}

TEST(RandomForest, RefitContractValidation) {
  RandomForest rf(ForestConfig{.estimators = 8, .seed = 61});
  Dataset d = wavy_dataset(100, 61);
  // Warm refit requires a prior fit.
  EXPECT_THROW(rf.refit_incremental(d), ContractViolation);
  rf.fit(d);
  // ... and a dataset at least as large as the one last fitted.
  const Dataset smaller = d.subset({0, 1, 2, 3});
  EXPECT_THROW(rf.refit_incremental(smaller), ContractViolation);
  // Same-size refit is legal (pure tree refresh, no growth).
  rf.refit_incremental(d);
  EXPECT_EQ(rf.refit_rounds(), 1u);
}

}  // namespace
}  // namespace stac::ml

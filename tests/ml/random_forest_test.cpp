#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace stac::ml {
namespace {

/// Noisy nonlinear target: y = sin(4a) + 0.5b + noise.
Dataset wavy_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(0, 2);
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    x.append_row(std::vector<double>{a, b});
    y.push_back(std::sin(4.0 * a) + 0.5 * b + rng.normal(0.0, 0.05));
  }
  return Dataset(std::move(x), std::move(y));
}

double test_mae(const RandomForest& rf, const Dataset& test) {
  double mae = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i)
    mae += std::abs(rf.predict(test.row(i)) - test.target(i));
  return mae / static_cast<double>(test.size());
}

TEST(RandomForest, FitsNonlinearFunction) {
  RandomForest rf(ForestConfig{.estimators = 50, .seed = 1});
  const Dataset train = wavy_dataset(600, 1);
  const Dataset test = wavy_dataset(200, 2);
  rf.fit(train);
  EXPECT_LT(test_mae(rf, test), 0.12);
}

TEST(RandomForest, EnsembleBeatsSingleTreeOnNoise) {
  const Dataset train = wavy_dataset(400, 3);
  const Dataset test = wavy_dataset(200, 4);
  RandomForest rf(ForestConfig{.estimators = 60, .seed = 5});
  rf.fit(train);
  RandomForest single(ForestConfig{.estimators = 1, .seed = 5});
  single.fit(train);
  EXPECT_LT(test_mae(rf, test), test_mae(single, test));
}

TEST(RandomForest, OobPredictionsCoverTrainingRows) {
  RandomForest rf(ForestConfig{.estimators = 30, .seed = 7});
  const Dataset train = wavy_dataset(200, 5);
  rf.fit(train);
  const auto& oob = rf.oob_predictions();
  ASSERT_EQ(oob.size(), 200u);
  // OOB error should be sane (not catastrophically off).
  double mae = 0.0;
  for (std::size_t i = 0; i < oob.size(); ++i)
    mae += std::abs(oob[i] - train.target(i));
  EXPECT_LT(mae / 200.0, 0.2);
}

TEST(RandomForest, DeterministicForSeedEvenParallel) {
  const Dataset train = wavy_dataset(300, 6);
  RandomForest a(ForestConfig{.estimators = 20, .seed = 11, .parallel = true});
  RandomForest b(ForestConfig{.estimators = 20, .seed = 11, .parallel = false});
  a.fit(train);
  b.fit(train);
  for (double v = 0.05; v < 1.0; v += 0.1) {
    const std::vector<double> x{v, 0.5};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(RandomForest, CompletelyRandomModeTrains) {
  RandomForest rf(ForestConfig{
      .estimators = 40, .split_mode = SplitMode::kCompletelyRandom,
      .seed = 13});
  const Dataset train = wavy_dataset(400, 7);
  const Dataset test = wavy_dataset(100, 8);
  rf.fit(train);
  EXPECT_LT(test_mae(rf, test), 0.25);
}

TEST(RandomForest, FeatureImportanceAggregates) {
  RandomForest rf(ForestConfig{.estimators = 20, .seed = 15});
  rf.fit(wavy_dataset(300, 9));
  const auto imp = rf.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], imp[1]);  // sin(4a) dominates 0.5b
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForest rf;
  EXPECT_THROW((void)rf.predict(std::vector<double>{0.5, 0.5}), ContractViolation);
  EXPECT_THROW((void)rf.oob_predictions(), ContractViolation);
}

TEST(RandomForest, BootstrapFractionValidated) {
  EXPECT_THROW(RandomForest(ForestConfig{.bootstrap_fraction = 0.0}),
               ContractViolation);
  EXPECT_THROW(RandomForest(ForestConfig{.estimators = 0}),
               ContractViolation);
}

}  // namespace
}  // namespace stac::ml

#include "ml/cascade.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace stac::ml {
namespace {

Dataset nonlinear_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(0, 3);
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(), b = rng.uniform(), c = rng.uniform();
    x.append_row(std::vector<double>{a, b, c});
    y.push_back(std::abs(a - b) + 0.3 * c + rng.normal(0.0, 0.02));
  }
  return Dataset(std::move(x), std::move(y));
}

CascadeConfig small_config() {
  CascadeConfig cfg;
  cfg.levels = 2;
  cfg.forests_per_level = 4;
  cfg.estimators = 20;
  cfg.final_forests = 2;
  cfg.seed = 3;
  return cfg;
}

TEST(CascadeForest, TrainsAndPredictsReasonably) {
  CascadeForest cf(small_config());
  const Dataset train = nonlinear_dataset(400, 1);
  cf.fit(train);
  EXPECT_TRUE(cf.trained());
  EXPECT_EQ(cf.level_count(), 2u);
  const Dataset test = nonlinear_dataset(150, 2);
  double mae = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i)
    mae += std::abs(cf.predict(test.row(i)) - test.target(i));
  EXPECT_LT(mae / static_cast<double>(test.size()), 0.08);
}

TEST(CascadeForest, ConceptVectorHasLevelsTimesForests) {
  CascadeForest cf(small_config());
  const Dataset train = nonlinear_dataset(150, 3);
  cf.fit(train);
  const auto concepts = cf.concepts(train.row(0));
  EXPECT_EQ(concepts.size(), 2u * 4u);
}

TEST(CascadeForest, PerLevelExtraFeaturesAccepted) {
  CascadeForest cf(small_config());
  const Dataset train = nonlinear_dataset(200, 4);
  Matrix extra0(200, 2), extra1(200, 1);
  Rng rng(5);
  for (std::size_t r = 0; r < 200; ++r) {
    extra0(r, 0) = rng.uniform();
    extra0(r, 1) = rng.uniform();
    extra1(r, 0) = rng.uniform();
  }
  cf.fit(train, {extra0, extra1});
  // Inference must supply matching extra blocks.
  const std::vector<std::vector<double>> extras{{0.5, 0.5}, {0.5}};
  EXPECT_NO_THROW((void)cf.predict(train.row(0), extras));
  EXPECT_THROW((void)cf.predict(train.row(0), {}), ContractViolation);
}

TEST(CascadeForest, ExtraRowMismatchThrows) {
  CascadeForest cf(small_config());
  const Dataset train = nonlinear_dataset(100, 6);
  Matrix extra(50, 2);
  EXPECT_THROW((void)cf.fit(train, {extra}), ContractViolation);
}

TEST(CascadeForest, PredictBeforeFitThrows) {
  CascadeForest cf;
  EXPECT_THROW((void)cf.predict(std::vector<double>{1.0, 2.0, 3.0}),
               ContractViolation);
}

TEST(CascadeForest, DeterministicForSeed) {
  const Dataset train = nonlinear_dataset(200, 7);
  CascadeForest a(small_config()), b(small_config());
  a.fit(train);
  b.fit(train);
  const std::vector<double> x{0.2, 0.7, 0.5};
  EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
}

TEST(CascadeForest, ParallelFitBitIdenticalToSerial) {
  // Forest seeds are drawn serially before the fan-out and every forest
  // trains into its own slot, so thread scheduling must not change a single
  // bit of the model.
  const Dataset train = nonlinear_dataset(250, 7);
  CascadeConfig cfg = small_config();
  cfg.parallel = false;
  CascadeForest serial(cfg);
  serial.fit(train);
  cfg.parallel = true;
  CascadeForest parallel(cfg);
  parallel.fit(train);

  const Dataset probe = nonlinear_dataset(100, 8);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(serial.predict(probe.row(i)), parallel.predict(probe.row(i)));
    EXPECT_EQ(serial.concepts(probe.row(i)), parallel.concepts(probe.row(i)));
  }
}

TEST(CascadeForest, ConfigValidation) {
  CascadeConfig bad = small_config();
  bad.levels = 0;
  EXPECT_THROW(CascadeForest{bad}, ContractViolation);
}

// ---- PR-9: warm-start cascade refit ---------------------------------------

TEST(CascadeForest, WarmRefitParityWithColdFit) {
  const Dataset grown = nonlinear_dataset(420, 21);
  std::vector<std::size_t> head(350);
  for (std::size_t i = 0; i < head.size(); ++i) head[i] = i;
  Dataset base = grown.subset(head);
  CascadeForest warm(small_config());
  warm.fit(base);
  EXPECT_EQ(warm.trained_rows(), 350u);
  for (std::size_t i = 350; i < grown.size(); ++i)
    base.add_row(grown.row(i), grown.target(i));
  warm.refit_incremental(base);
  EXPECT_EQ(warm.trained_rows(), 420u);

  CascadeForest cold(small_config());
  cold.fit(base);
  const Dataset test = nonlinear_dataset(150, 22);
  auto mae = [&](const CascadeForest& cf) {
    double m = 0.0;
    for (std::size_t i = 0; i < test.size(); ++i)
      m += std::abs(cf.predict(test.row(i)) - test.target(i));
    return m / static_cast<double>(test.size());
  };
  // The warm-start contract: old rows keep their frozen training-time
  // concepts and only a round-robin tree subset retrains, so the result is
  // an approximation — but one that must track a full refit closely.
  EXPECT_LE(mae(warm), mae(cold) + 0.03);
}

TEST(CascadeForest, WarmRefitIsDeterministic) {
  auto run = [] {
    Dataset d = nonlinear_dataset(240, 25);
    CascadeForest cf(small_config());
    cf.fit(d);
    const Dataset extra = nonlinear_dataset(60, 26);
    for (std::size_t i = 0; i < extra.size(); ++i)
      d.add_row(extra.row(i), extra.target(i));
    cf.refit_incremental(d);
    return cf;
  };
  const CascadeForest a = run();
  const CascadeForest b = run();
  const Dataset probe = nonlinear_dataset(80, 27);
  for (std::size_t i = 0; i < probe.size(); ++i)
    EXPECT_EQ(a.predict(probe.row(i)), b.predict(probe.row(i)));
}

TEST(CascadeForest, RefitContractValidation) {
  CascadeForest cf(small_config());
  Dataset d = nonlinear_dataset(120, 28);
  EXPECT_THROW(cf.refit_incremental(d), ContractViolation);
  cf.fit(d);
  const Dataset smaller = d.subset({0, 1, 2});
  EXPECT_THROW(cf.refit_incremental(smaller), ContractViolation);
}

}  // namespace
}  // namespace stac::ml

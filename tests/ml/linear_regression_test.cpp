#include "ml/linear_regression.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace stac::ml {
namespace {

TEST(LinearRegression, RecoversKnownCoefficients) {
  Rng rng(1);
  Matrix x(0, 2);
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    x.append_row(std::vector<double>{a, b});
    y.push_back(2.0 * a - 3.0 * b + 5.0);
  }
  LinearRegression lr;
  lr.fit(Dataset(std::move(x), std::move(y)));
  EXPECT_NEAR(lr.predict(std::vector<double>{0.0, 0.0}), 5.0, 1e-3);
  EXPECT_NEAR(lr.predict(std::vector<double>{1.0, 0.0}), 7.0, 1e-3);
  EXPECT_NEAR(lr.predict(std::vector<double>{0.0, 1.0}), 2.0, 1e-3);
}

TEST(LinearRegression, HandlesNoisyData) {
  Rng rng(2);
  Matrix x(0, 1);
  std::vector<double> y;
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(0, 10);
    x.append_row(std::vector<double>{a});
    y.push_back(4.0 * a + rng.normal(0.0, 1.0));
  }
  LinearRegression lr;
  lr.fit(Dataset(std::move(x), std::move(y)));
  EXPECT_NEAR(lr.predict(std::vector<double>{5.0}), 20.0, 0.3);
}

TEST(LinearRegression, ConstantFeatureIsHarmless) {
  Matrix x(0, 2);
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.append_row(std::vector<double>{static_cast<double>(i), 1.0});
    y.push_back(2.0 * i);
  }
  LinearRegression lr;
  lr.fit(Dataset(std::move(x), std::move(y)));
  EXPECT_NEAR(lr.predict(std::vector<double>{10.0, 1.0}), 20.0, 0.05);
}

TEST(LinearRegression, CollinearFeaturesStabilizedByRidge) {
  Matrix x(0, 2);
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double a = static_cast<double>(i);
    x.append_row(std::vector<double>{a, 2.0 * a});  // perfectly collinear
    y.push_back(3.0 * a);
  }
  LinearRegression lr(LinearConfig{.ridge = 1e-4});
  EXPECT_NO_THROW(lr.fit(Dataset(std::move(x), std::move(y))));
  EXPECT_NEAR(lr.predict(std::vector<double>{50.0, 100.0}), 150.0, 1.0);
}

TEST(LinearRegression, HeavyRidgeShrinksTowardMean) {
  Matrix x(0, 1);
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.append_row(std::vector<double>{static_cast<double>(i)});
    y.push_back(static_cast<double>(i));
  }
  LinearRegression strong(LinearConfig{.ridge = 1e6});
  strong.fit(Dataset(x, y));
  // Nearly the mean predictor.
  EXPECT_NEAR(strong.predict(std::vector<double>{99.0}), 49.5, 5.0);
}

TEST(LinearRegression, FailsOnUnderspecifiedNonlinearity) {
  // The reason Fig. 6's linear bar is terrible: y = a^2 is not linear.
  Rng rng(3);
  Matrix x(0, 1);
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-2, 2);
    x.append_row(std::vector<double>{a});
    y.push_back(a * a);
  }
  LinearRegression lr;
  lr.fit(Dataset(std::move(x), std::move(y)));
  // Predicts the mean-ish everywhere; badly wrong at the edges.
  EXPECT_GT(std::abs(lr.predict(std::vector<double>{2.0}) - 4.0), 1.0);
}

TEST(LinearRegression, PredictBeforeFitThrows) {
  LinearRegression lr;
  EXPECT_THROW((void)lr.predict(std::vector<double>{1.0}), ContractViolation);
}

}  // namespace
}  // namespace stac::ml

#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "ml/linear_regression.hpp"
#include "ml/random_forest.hpp"

namespace stac::ml {
namespace {

Dataset linearish(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(0, 2);
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    x.append_row(std::vector<double>{a, b});
    y.push_back(3.0 * a - b + rng.normal(0.0, 0.05));
  }
  return Dataset(std::move(x), std::move(y));
}

TEST(CrossValidation, RunsAllFolds) {
  const Dataset d = linearish(100, 1);
  const auto r = cross_validate(d, 5, 2, [](const Dataset& train) {
    auto model = std::make_shared<LinearRegression>();
    model->fit(train);
    return [model](std::span<const double> x) { return model->predict(x); };
  });
  EXPECT_EQ(r.fold_mae.size(), 5u);
  EXPECT_EQ(r.absolute_errors.count(), 100u);  // every row held out once
  EXPECT_LT(r.mean_mae(), 0.1);                // near the noise floor
}

TEST(CrossValidation, DetectsOverfitting) {
  // A depth-unlimited single tree memorizes noise; its CV error exceeds
  // the noise floor by a clear margin while its training error is ~0 —
  // the §3.2 "simple models overfit" argument, measurable.
  const Dataset d = linearish(80, 3);
  const auto cv_tree = cross_validate(d, 4, 4, [](const Dataset& train) {
    auto tree = std::make_shared<DecisionTree>(
        TreeConfig{.split_mode = SplitMode::kAllFeatures});
    tree->fit(train);
    return [tree](std::span<const double> x) { return tree->predict(x); };
  });
  const auto cv_lin = cross_validate(d, 4, 4, [](const Dataset& train) {
    auto model = std::make_shared<LinearRegression>();
    model->fit(train);
    return [model](std::span<const double> x) { return model->predict(x); };
  });
  // The linear model matches the generating process: it must win CV.
  EXPECT_LT(cv_lin.mean_mae(), cv_tree.mean_mae());
}

TEST(CrossValidation, DeterministicForSeed) {
  const Dataset d = linearish(60, 5);
  auto train = [](const Dataset& t) {
    auto model = std::make_shared<LinearRegression>();
    model->fit(t);
    return [model](std::span<const double> x) { return model->predict(x); };
  };
  const auto a = cross_validate(d, 3, 7, train);
  const auto b = cross_validate(d, 3, 7, train);
  ASSERT_EQ(a.fold_mae.size(), b.fold_mae.size());
  for (std::size_t i = 0; i < a.fold_mae.size(); ++i)
    EXPECT_DOUBLE_EQ(a.fold_mae[i], b.fold_mae[i]);
}

TEST(CrossValidation, NullTrainerThrows) {
  const Dataset d = linearish(20, 9);
  EXPECT_THROW((void)cross_validate(d, 2, 1, nullptr), ContractViolation);
}

}  // namespace
}  // namespace stac::ml

#include "ml/mgs.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace stac::ml {
namespace {

/// Images whose target depends on a localized pattern: top-left block mean.
void make_images(std::size_t n, std::uint64_t seed,
                 std::vector<Matrix>& images, std::vector<double>& targets) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    Matrix img(12, 10);
    const double level = rng.uniform();
    for (std::size_t r = 0; r < 12; ++r)
      for (std::size_t c = 0; c < 10; ++c)
        img(r, c) = (r < 4 && c < 4 ? level : rng.uniform() * 0.2);
    images.push_back(std::move(img));
    targets.push_back(level);
  }
}

TEST(MultiGrainScanner, GeometryAndFeatureCounts) {
  std::vector<Matrix> images;
  std::vector<double> targets;
  make_images(40, 1, images, targets);
  MgsConfig cfg;
  cfg.window_sizes = {4, 8};
  cfg.estimators = 10;
  MultiGrainScanner mgs(cfg);
  mgs.fit(images, targets);
  EXPECT_EQ(mgs.grain_count(), 2u);
  EXPECT_EQ(mgs.window_size(0), 4u);
  EXPECT_EQ(mgs.feature_count(0), (12 - 4 + 1) * (10 - 4 + 1));
  EXPECT_EQ(mgs.feature_count(1), (12 - 8 + 1) * (10 - 8 + 1));
}

TEST(MultiGrainScanner, OversizedWindowsSkipped) {
  std::vector<Matrix> images;
  std::vector<double> targets;
  make_images(30, 2, images, targets);
  MgsConfig cfg;
  cfg.window_sizes = {4, 35};  // 35 does not fit a 12x10 image
  cfg.estimators = 8;
  MultiGrainScanner mgs(cfg);
  mgs.fit(images, targets);
  EXPECT_EQ(mgs.grain_count(), 1u);
}

TEST(MultiGrainScanner, NoUsableWindowThrows) {
  std::vector<Matrix> images;
  std::vector<double> targets;
  make_images(10, 3, images, targets);
  MgsConfig cfg;
  cfg.window_sizes = {30};
  MultiGrainScanner mgs(cfg);
  EXPECT_THROW(mgs.fit(images, targets), ContractViolation);
}

TEST(MultiGrainScanner, TransformShapesMatch) {
  std::vector<Matrix> images;
  std::vector<double> targets;
  make_images(30, 4, images, targets);
  MgsConfig cfg;
  cfg.window_sizes = {4};
  cfg.estimators = 10;
  MultiGrainScanner mgs(cfg);
  mgs.fit(images, targets);
  const auto feats = mgs.transform(images[0]);
  ASSERT_EQ(feats.size(), 1u);
  EXPECT_EQ(feats[0].size(), mgs.feature_count(0));
}

TEST(MultiGrainScanner, WindowPredictionsTrackLocalPattern) {
  std::vector<Matrix> images;
  std::vector<double> targets;
  make_images(120, 5, images, targets);
  MgsConfig cfg;
  cfg.window_sizes = {4};
  cfg.estimators = 20;
  MultiGrainScanner mgs(cfg);
  mgs.fit(images, targets);

  // A bright-pattern image's top-left window features should on average
  // predict higher EA than a dark one's.
  Matrix bright(12, 10), dark(12, 10);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      bright(r, c) = 0.95;
      dark(r, c) = 0.05;
    }
  const auto fb = mgs.transform(bright)[0];
  const auto fd = mgs.transform(dark)[0];
  // Compare the first window (fully inside the pattern block).
  EXPECT_GT(fb[0], fd[0]);
}

TEST(MultiGrainScanner, GeometryMismatchAtTransformThrows) {
  std::vector<Matrix> images;
  std::vector<double> targets;
  make_images(20, 6, images, targets);
  MgsConfig cfg;
  cfg.window_sizes = {4};
  cfg.estimators = 5;
  MultiGrainScanner mgs(cfg);
  mgs.fit(images, targets);
  EXPECT_THROW(mgs.transform(Matrix(5, 5)), ContractViolation);
}

TEST(MultiGrainScanner, MismatchedInputsThrow) {
  MultiGrainScanner mgs;
  std::vector<Matrix> images{Matrix(12, 10), Matrix(11, 10)};
  std::vector<double> targets{0.1, 0.2};
  EXPECT_THROW(mgs.fit(images, targets), ContractViolation);
  EXPECT_THROW(mgs.transform(Matrix(12, 10)), ContractViolation);
}

TEST(MultiGrainScanner, StrideReducesFeatureCount) {
  std::vector<Matrix> images;
  std::vector<double> targets;
  make_images(20, 7, images, targets);
  MgsConfig cfg;
  cfg.window_sizes = {4};
  cfg.stride = 2;
  cfg.estimators = 5;
  MultiGrainScanner mgs(cfg);
  mgs.fit(images, targets);
  EXPECT_EQ(mgs.feature_count(0), 5u * 4u);  // ceil(9/2) x ceil(7/2)
}

}  // namespace
}  // namespace stac::ml

#include "ml/kmeans.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace stac::ml {
namespace {

Matrix two_blobs(std::size_t per_blob, std::uint64_t seed) {
  Rng rng(seed);
  Matrix pts(0, 2);
  for (std::size_t i = 0; i < per_blob; ++i)
    pts.append_row(std::vector<double>{rng.normal(0.0, 0.3),
                                       rng.normal(0.0, 0.3)});
  for (std::size_t i = 0; i < per_blob; ++i)
    pts.append_row(std::vector<double>{rng.normal(10.0, 0.3),
                                       rng.normal(10.0, 0.3)});
  return pts;
}

TEST(KMeans, SeparatesTwoBlobs) {
  const Matrix pts = two_blobs(50, 1);
  const KMeansResult r = kmeans(pts, KMeansConfig{.k = 2, .seed = 2});
  // All of blob 1 together, all of blob 2 together.
  const std::size_t first = r.assignment[0];
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(r.assignment[i], first);
  const std::size_t second = r.assignment[50];
  EXPECT_NE(first, second);
  for (std::size_t i = 50; i < 100; ++i) EXPECT_EQ(r.assignment[i], second);
}

TEST(KMeans, CentroidsNearBlobMeans) {
  const Matrix pts = two_blobs(100, 3);
  const KMeansResult r = kmeans(pts, KMeansConfig{.k = 2, .seed = 4});
  // One centroid near (0,0), the other near (10,10).
  const double d0 = std::min(squared_distance(r.centroids.row(0),
                                              std::vector<double>{0.0, 0.0}),
                             squared_distance(r.centroids.row(1),
                                              std::vector<double>{0.0, 0.0}));
  const double d10 = std::min(
      squared_distance(r.centroids.row(0), std::vector<double>{10.0, 10.0}),
      squared_distance(r.centroids.row(1), std::vector<double>{10.0, 10.0}));
  EXPECT_LT(d0, 0.1);
  EXPECT_LT(d10, 0.1);
}

TEST(KMeans, InertiaDecreasesWithK) {
  const Matrix pts = two_blobs(60, 5);
  const double i1 = kmeans(pts, KMeansConfig{.k = 1, .seed = 6}).inertia;
  const double i2 = kmeans(pts, KMeansConfig{.k = 2, .seed = 6}).inertia;
  const double i4 = kmeans(pts, KMeansConfig{.k = 4, .seed = 6}).inertia;
  EXPECT_LT(i2, i1);
  EXPECT_LE(i4, i2 + 1e-9);
}

TEST(KMeans, KClampedToPointCount) {
  Matrix pts(0, 1);
  pts.append_row(std::vector<double>{1.0});
  pts.append_row(std::vector<double>{2.0});
  const KMeansResult r = kmeans(pts, KMeansConfig{.k = 5, .seed = 7});
  EXPECT_EQ(r.centroids.rows(), 2u);
}

TEST(KMeans, SinglePoint) {
  Matrix pts(0, 2);
  pts.append_row(std::vector<double>{3.0, 4.0});
  const KMeansResult r = kmeans(pts, KMeansConfig{.k = 1, .seed = 8});
  EXPECT_EQ(r.assignment[0], 0u);
  EXPECT_DOUBLE_EQ(r.inertia, 0.0);
  EXPECT_DOUBLE_EQ(r.centroids(0, 0), 3.0);
}

TEST(KMeans, IdenticalPointsConverge) {
  Matrix pts(0, 1);
  for (int i = 0; i < 10; ++i) pts.append_row(std::vector<double>{5.0});
  const KMeansResult r = kmeans(pts, KMeansConfig{.k = 3, .seed = 9});
  EXPECT_DOUBLE_EQ(r.inertia, 0.0);
}

TEST(KMeans, DeterministicForSeed) {
  const Matrix pts = two_blobs(40, 10);
  const KMeansResult a = kmeans(pts, KMeansConfig{.k = 3, .seed = 11});
  const KMeansResult b = kmeans(pts, KMeansConfig{.k = 3, .seed = 11});
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(SquaredDistance, BasicsAndValidation) {
  EXPECT_DOUBLE_EQ(squared_distance(std::vector<double>{0.0, 0.0},
                                    std::vector<double>{3.0, 4.0}),
                   25.0);
  EXPECT_THROW((void)squared_distance(std::vector<double>{1.0},
                                std::vector<double>{1.0, 2.0}),
               ContractViolation);
}

}  // namespace
}  // namespace stac::ml

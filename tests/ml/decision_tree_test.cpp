#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace stac::ml {
namespace {

/// Step function dataset: y = 1 when x0 > 0.5, else 0.
Dataset step_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(0, 3);
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform();
    x.append_row(std::vector<double>{a, rng.uniform(), rng.uniform()});
    y.push_back(a > 0.5 ? 1.0 : 0.0);
  }
  return Dataset(std::move(x), std::move(y));
}

TEST(DecisionTree, LearnsStepFunction) {
  DecisionTree tree(TreeConfig{.split_mode = SplitMode::kAllFeatures});
  const Dataset d = step_dataset(400, 1);
  tree.fit(d);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.9, 0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.1, 0.5, 0.5}), 0.0);
}

TEST(DecisionTree, PureTargetsYieldSingleLeaf) {
  Matrix x(0, 1);
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    x.append_row(std::vector<double>{static_cast<double>(i)});
    y.push_back(7.0);
  }
  DecisionTree tree;
  tree.fit(Dataset(std::move(x), std::move(y)));
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.depth(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{99.0}), 7.0);
}

TEST(DecisionTree, MaxDepthCapsGrowth) {
  DecisionTree tree(TreeConfig{.split_mode = SplitMode::kAllFeatures,
                               .max_depth = 2});
  tree.fit(step_dataset(200, 2));
  EXPECT_LE(tree.depth(), 3u);  // root at depth 1 + 2 levels of splits
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  DecisionTree tree(TreeConfig{.split_mode = SplitMode::kAllFeatures,
                               .min_samples_leaf = 50});
  tree.fit(step_dataset(100, 3));
  // With 100 rows and 50-per-leaf, at most one split.
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree;
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}), ContractViolation);
}

TEST(DecisionTree, WrongFeatureCountThrows) {
  DecisionTree tree;
  tree.fit(step_dataset(50, 4));
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}), ContractViolation);
}

TEST(DecisionTree, FeatureImportanceIdentifiesSignal) {
  DecisionTree tree(TreeConfig{.split_mode = SplitMode::kAllFeatures});
  tree.fit(step_dataset(400, 5));
  const auto imp = tree.feature_importance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[2]);
}

TEST(DecisionTree, CompletelyRandomStillLearnsCoarsely) {
  DecisionTree tree(TreeConfig{.split_mode = SplitMode::kCompletelyRandom,
                               .seed = 7});
  tree.fit(step_dataset(600, 6));
  // Random splits grow to purity, so training-region predictions are
  // directionally right.
  EXPECT_GT(tree.predict(std::vector<double>{0.95, 0.5, 0.5}), 0.7);
  EXPECT_LT(tree.predict(std::vector<double>{0.05, 0.5, 0.5}), 0.3);
}

TEST(DecisionTree, MatrixPredictShapes) {
  DecisionTree tree(TreeConfig{.split_mode = SplitMode::kAllFeatures});
  const Dataset d = step_dataset(100, 8);
  tree.fit(d);
  const auto preds = tree.predict(d.features());
  EXPECT_EQ(preds.size(), 100u);
}

TEST(DecisionTree, FitOnRowSubset) {
  const Dataset d = step_dataset(200, 9);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < 100; ++i) rows.push_back(i);
  DecisionTree tree(TreeConfig{.split_mode = SplitMode::kAllFeatures});
  tree.fit(d, rows);
  EXPECT_TRUE(tree.trained());
}

TEST(DecisionTree, PresortMatchesLegacySortBitwise) {
  // With continuous (distinct) feature values the presorted split search
  // must reproduce the per-node-sort baseline exactly: same structure,
  // bitwise-equal thresholds and leaf values.
  Rng rng(11);
  Matrix x(0, 5);
  std::vector<double> y;
  for (std::size_t i = 0; i < 300; ++i) {
    std::vector<double> row(5);
    for (auto& v : row) v = rng.uniform();
    x.append_row(row);
    y.push_back(row[0] * row[1] - row[2] + rng.normal(0.0, 0.05));
  }
  const Dataset d(std::move(x), std::move(y));

  for (const SplitMode mode :
       {SplitMode::kAllFeatures, SplitMode::kSqrtFeatures}) {
    TreeConfig cfg;
    cfg.split_mode = mode;
    cfg.seed = 99;
    cfg.presort = false;
    DecisionTree legacy(cfg);
    legacy.fit(d);
    cfg.presort = true;
    DecisionTree fast(cfg);
    fast.fit(d);
    EXPECT_EQ(legacy.depth(), fast.depth());
    const auto a = legacy.predict(d.features());
    const auto b = fast.predict(d.features());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    const auto ia = legacy.feature_importance();
    const auto ib = fast.feature_importance();
    for (std::size_t f = 0; f < ia.size(); ++f) EXPECT_EQ(ia[f], ib[f]);
  }
}

TEST(DecisionTree, PresortFitOnRowSubsetMatchesLegacy) {
  // The presorted path indexes bootstrap slots, not dataset rows — check a
  // subset with duplicated rows (the random-forest bootstrap shape).
  Rng rng(12);
  Matrix x(0, 4);
  std::vector<double> y;
  for (std::size_t i = 0; i < 120; ++i) {
    std::vector<double> row(4);
    for (auto& v : row) v = rng.uniform();
    x.append_row(row);
    y.push_back(row[0] + 2.0 * row[3] + rng.normal(0.0, 0.03));
  }
  const Dataset d(std::move(x), std::move(y));
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < 150; ++i)
    slots.push_back(rng.uniform_index(d.size()));

  TreeConfig cfg;
  cfg.split_mode = SplitMode::kAllFeatures;
  cfg.presort = false;
  DecisionTree legacy(cfg);
  legacy.fit(d, slots);
  cfg.presort = true;
  DecisionTree fast(cfg);
  fast.fit(d, slots);
  const auto a = legacy.predict(d.features());
  const auto b = fast.predict(d.features());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(DecisionTree, DeterministicForSeed) {
  const Dataset d = step_dataset(300, 10);
  DecisionTree a(TreeConfig{.split_mode = SplitMode::kSqrtFeatures, .seed = 3});
  DecisionTree b(TreeConfig{.split_mode = SplitMode::kSqrtFeatures, .seed = 3});
  a.fit(d);
  b.fit(d);
  for (double v = 0.0; v < 1.0; v += 0.1) {
    const std::vector<double> x{v, 0.5, 0.5};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

}  // namespace
}  // namespace stac::ml

#include "ml/neural_net.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace stac::ml {
namespace {

void tabular_samples(std::size_t n, std::uint64_t seed,
                     std::vector<ProfileSample>& xs,
                     std::vector<double>& ys) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    xs.push_back(ProfileSample{Matrix{}, {a, b}});
    ys.push_back(2.0 * a - b + 0.5);
  }
}

void image_samples(std::size_t n, std::uint64_t seed,
                   std::vector<ProfileSample>& xs, std::vector<double>& ys) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double level = rng.uniform();
    Matrix img(8, 8);
    for (std::size_t r = 0; r < 8; ++r)
      for (std::size_t c = 0; c < 8; ++c)
        img(r, c) = level + rng.normal(0.0, 0.05);
    xs.push_back(ProfileSample{std::move(img), {}});
    ys.push_back(level);
  }
}

TEST(ConvNet, FitsLinearTabularFunction) {
  std::vector<ProfileSample> xs;
  std::vector<double> ys;
  tabular_samples(300, 1, xs, ys);
  ConvNetConfig cfg;
  cfg.hidden = 16;
  cfg.epochs = 150;
  cfg.seed = 2;
  ConvNet net(cfg);
  net.fit(xs, ys);
  EXPECT_TRUE(net.trained());
  double mae = 0.0;
  for (std::size_t i = 0; i < 100; ++i)
    mae += std::abs(net.predict(xs[i]) - ys[i]);
  EXPECT_LT(mae / 100.0, 0.1);
}

TEST(ConvNet, LearnsImageLevel) {
  std::vector<ProfileSample> xs;
  std::vector<double> ys;
  image_samples(200, 3, xs, ys);
  ConvNetConfig cfg;
  cfg.kernels = 4;
  cfg.hidden = 16;
  cfg.epochs = 60;
  cfg.seed = 4;
  ConvNet net(cfg);
  net.fit(xs, ys);
  double mae = 0.0;
  for (std::size_t i = 0; i < 80; ++i)
    mae += std::abs(net.predict(xs[i]) - ys[i]);
  EXPECT_LT(mae / 80.0, 0.12);
}

TEST(ConvNet, SeedVariabilityExists) {
  // The paper's Fig. 5 depends on run-to-run variance under re-init.
  std::vector<ProfileSample> xs;
  std::vector<double> ys;
  image_samples(80, 5, xs, ys);
  ConvNetConfig cfg;
  cfg.kernels = 2;
  cfg.hidden = 8;
  cfg.epochs = 15;
  double p1, p2;
  {
    ConvNetConfig c = cfg;
    c.seed = 1;
    ConvNet net(c);
    net.fit(xs, ys);
    p1 = net.predict(xs[0]);
  }
  {
    ConvNetConfig c = cfg;
    c.seed = 99;
    ConvNet net(c);
    net.fit(xs, ys);
    p2 = net.predict(xs[0]);
  }
  EXPECT_NE(p1, p2);
}

TEST(ConvNet, ResidualBlocksFitTabularFunction) {
  // The paper's future-work variant: residual blocks after the hidden
  // layer.  Must still learn, and must beat its own untrained state.
  std::vector<ProfileSample> xs;
  std::vector<double> ys;
  tabular_samples(300, 21, xs, ys);
  ConvNetConfig cfg;
  cfg.hidden = 16;
  cfg.residual_blocks = 2;
  cfg.epochs = 150;
  cfg.seed = 22;
  ConvNet net(cfg);
  net.fit(xs, ys);
  double mae = 0.0;
  for (std::size_t i = 0; i < 100; ++i)
    mae += std::abs(net.predict(xs[i]) - ys[i]);
  EXPECT_LT(mae / 100.0, 0.15);
}

TEST(ConvNet, ResidualBlocksLearnImages) {
  std::vector<ProfileSample> xs;
  std::vector<double> ys;
  image_samples(200, 23, xs, ys);
  ConvNetConfig cfg;
  cfg.kernels = 4;
  cfg.hidden = 16;
  cfg.residual_blocks = 1;
  cfg.epochs = 60;
  cfg.seed = 24;
  ConvNet net(cfg);
  net.fit(xs, ys);
  double mae = 0.0;
  for (std::size_t i = 0; i < 80; ++i)
    mae += std::abs(net.predict(xs[i]) - ys[i]);
  EXPECT_LT(mae / 80.0, 0.15);
}

TEST(ConvNet, ZeroResidualBlocksUnchangedBehaviour) {
  // residual_blocks = 0 must reproduce the plain network exactly.
  std::vector<ProfileSample> xs;
  std::vector<double> ys;
  tabular_samples(100, 25, xs, ys);
  ConvNetConfig cfg;
  cfg.hidden = 8;
  cfg.epochs = 30;
  cfg.seed = 26;
  ConvNet a(cfg), b(cfg);
  a.fit(xs, ys);
  b.fit(xs, ys);
  EXPECT_DOUBLE_EQ(a.predict(xs[0]), b.predict(xs[0]));
}

TEST(ConvNet, PredictBeforeFitThrows) {
  ConvNet net;
  EXPECT_THROW((void)net.predict(ProfileSample{}), ContractViolation);
}

TEST(ConvNet, ConfigValidation) {
  ConvNetConfig bad;
  bad.dropout = 1.0;
  EXPECT_THROW(ConvNet{bad}, ContractViolation);
}

TEST(TuneConvnet, ReturnsBestOfTrials) {
  std::vector<ProfileSample> tx, vx;
  std::vector<double> ty, vy;
  tabular_samples(150, 7, tx, ty);
  tabular_samples(60, 8, vx, vy);
  const TuneResult r = tune_convnet(tx, ty, vx, vy, 3, 9);
  EXPECT_EQ(r.trials, 3u);
  EXPECT_GT(r.best_validation_mae, 0.0);
  EXPECT_LT(r.best_validation_mae, 1.0);
  EXPECT_GE(r.best.hidden, 16u);
}

TEST(TuneConvnet, RequiresValidation) {
  std::vector<ProfileSample> tx;
  std::vector<double> ty;
  tabular_samples(20, 10, tx, ty);
  EXPECT_THROW((void)tune_convnet(tx, ty, {}, {}, 1, 1), ContractViolation);
}

}  // namespace
}  // namespace stac::ml

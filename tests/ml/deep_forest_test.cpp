#include "ml/deep_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/linear_regression.hpp"

namespace stac::ml {
namespace {

/// Samples with an image encoding hidden factor `h` in a spatial block and
/// a tabular part [a, b]; target = |a - h| + 0.2 b (nonlinear, image-
/// dependent).
void make_samples(std::size_t n, std::uint64_t seed,
                  std::vector<ProfileSample>& xs, std::vector<double>& ys) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(), b = rng.uniform(), h = rng.uniform();
    Matrix img(10, 8);
    for (std::size_t r = 0; r < 10; ++r)
      for (std::size_t c = 0; c < 8; ++c)
        img(r, c) = (r < 5 ? h : 0.0) + rng.normal(0.0, 0.03);
    xs.push_back(ProfileSample{std::move(img), {a, b}});
    ys.push_back(std::abs(a - h) + 0.2 * b + rng.normal(0.0, 0.01));
  }
}

DeepForestConfig small_config() {
  DeepForestConfig cfg;
  cfg.mgs.window_sizes = {4, 6};
  cfg.mgs.estimators = 10;
  cfg.cascade.levels = 2;
  cfg.cascade.estimators = 20;
  cfg.cascade.final_forests = 2;
  return cfg;
}

TEST(DeepForest, LearnsImageDependentTarget) {
  std::vector<ProfileSample> train_x, test_x;
  std::vector<double> train_y, test_y;
  make_samples(250, 1, train_x, train_y);
  make_samples(100, 2, test_x, test_y);

  DeepForest df(small_config());
  df.fit(train_x, train_y);
  EXPECT_TRUE(df.trained());
  EXPECT_TRUE(df.uses_mgs());

  double mae = 0.0;
  for (std::size_t i = 0; i < test_x.size(); ++i)
    mae += std::abs(df.predict(test_x[i]) - test_y[i]);
  mae /= static_cast<double>(test_x.size());

  // Tabular-only linear regression cannot see h: deep forest must beat it.
  Matrix x(0, 2);
  for (const auto& s : train_x) x.append_row(s.tabular);
  LinearRegression lin;
  lin.fit(Dataset(std::move(x), train_y));
  double lin_mae = 0.0;
  for (std::size_t i = 0; i < test_x.size(); ++i)
    lin_mae += std::abs(lin.predict(test_x[i].tabular) - test_y[i]);
  lin_mae /= static_cast<double>(test_x.size());

  EXPECT_LT(mae, lin_mae);
  EXPECT_LT(mae, 0.2);
}

TEST(DeepForest, TabularOnlyModeSkipsMgs) {
  std::vector<ProfileSample> xs;
  std::vector<double> ys;
  Rng rng(3);
  for (int i = 0; i < 150; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    xs.push_back(ProfileSample{Matrix{}, {a, b}});
    ys.push_back(a * b);
  }
  DeepForest df(small_config());
  df.fit(xs, ys);
  EXPECT_FALSE(df.uses_mgs());
  EXPECT_NEAR(df.predict(ProfileSample{Matrix{}, {0.9, 0.9}}), 0.81, 0.2);
}

TEST(DeepForest, ConceptsExposedForClustering) {
  std::vector<ProfileSample> xs;
  std::vector<double> ys;
  make_samples(120, 4, xs, ys);
  DeepForest df(small_config());
  df.fit(xs, ys);
  const auto concepts = df.concepts(xs[0]);
  EXPECT_EQ(concepts.size(), 2u * 4u);  // levels x forests_per_level
}

TEST(DeepForest, MixedImagePresenceThrows) {
  DeepForest df(small_config());
  std::vector<ProfileSample> xs;
  std::vector<double> ys;
  make_samples(50, 5, xs, ys);
  df.fit(xs, ys);
  EXPECT_THROW((void)df.predict(ProfileSample{Matrix{}, {0.5, 0.5}}),
               ContractViolation);
}

TEST(DeepForest, TabularWidthMismatchThrows) {
  DeepForest df(small_config());
  std::vector<ProfileSample> xs{ProfileSample{Matrix{}, {1.0, 2.0}},
                                ProfileSample{Matrix{}, {1.0}}};
  std::vector<double> ys{0.0, 1.0};
  EXPECT_THROW((void)df.fit(xs, ys), ContractViolation);
}

TEST(DeepForest, PredictBeforeFitThrows) {
  DeepForest df;
  EXPECT_THROW((void)df.predict(ProfileSample{}), ContractViolation);
}

// ---- PR-9: warm-start refit through the MGS + cascade stack ---------------

TEST(DeepForest, WarmRefitParityWithColdFit) {
  std::vector<ProfileSample> xs, test_x;
  std::vector<double> ys, test_y;
  make_samples(220, 31, xs, ys);
  make_samples(90, 32, test_x, test_y);

  std::vector<ProfileSample> base_x(xs.begin(), xs.begin() + 170);
  std::vector<double> base_y(ys.begin(), ys.begin() + 170);
  DeepForest warm(small_config());
  warm.fit(base_x, base_y);
  // Only the appended samples pass through the scanner on refit; the old
  // rows' window features and concepts are reused as cached.
  warm.refit_incremental(xs, ys);

  DeepForest cold(small_config());
  cold.fit(xs, ys);
  auto mae = [&](const DeepForest& df) {
    double m = 0.0;
    for (std::size_t i = 0; i < test_x.size(); ++i)
      m += std::abs(df.predict(test_x[i]) - test_y[i]);
    return m / static_cast<double>(test_x.size());
  };
  EXPECT_LE(mae(warm), mae(cold) + 0.03);
}

TEST(DeepForest, RefitContractValidation) {
  DeepForest df(small_config());
  std::vector<ProfileSample> xs;
  std::vector<double> ys;
  make_samples(60, 35, xs, ys);
  EXPECT_THROW(df.refit_incremental(xs, ys), ContractViolation);
  df.fit(xs, ys);
  std::vector<ProfileSample> fewer(xs.begin(), xs.begin() + 10);
  std::vector<double> fewer_y(ys.begin(), ys.begin() + 10);
  EXPECT_THROW(df.refit_incremental(fewer, fewer_y), ContractViolation);
}

}  // namespace
}  // namespace stac::ml

#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace stac::ml {
namespace {

Dataset small_dataset(std::size_t n = 20) {
  Matrix x(0, 2);
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = static_cast<double>(i);
    x.append_row(std::vector<double>{a, a * a});
    y.push_back(a * 3.0);
  }
  return Dataset(std::move(x), std::move(y), {"a", "a2"});
}

TEST(Dataset, ConstructionValidation) {
  Matrix x(2, 2);
  EXPECT_THROW(Dataset(x, {1.0}), ContractViolation);
  EXPECT_THROW(Dataset(x, {1.0, 2.0}, {"only-one"}), ContractViolation);
}

TEST(Dataset, RowAccessAndTarget) {
  const Dataset d = small_dataset();
  EXPECT_EQ(d.size(), 20u);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_DOUBLE_EQ(d.row(3)[0], 3.0);
  EXPECT_DOUBLE_EQ(d.target(3), 9.0);
  EXPECT_EQ(d.feature_names()[1], "a2");
}

TEST(Dataset, AddRow) {
  Dataset d = small_dataset(2);
  d.add_row(std::vector<double>{9.0, 81.0}, 27.0);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.target(2), 27.0);
}

TEST(Dataset, SubsetPreservesRows) {
  const Dataset d = small_dataset();
  const Dataset s = d.subset({1, 5, 7});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.target(1), 15.0);
  EXPECT_DOUBLE_EQ(s.row(2)[1], 49.0);
}

TEST(Dataset, SplitSizesAndDisjoint) {
  const Dataset d = small_dataset(100);
  Rng rng(5);
  const auto [train, test] = d.split(0.33, rng);
  EXPECT_EQ(train.size(), 33u);
  EXPECT_EQ(test.size(), 67u);
  // Disjoint: targets are unique in this dataset, so compare sets.
  std::set<double> seen;
  for (std::size_t i = 0; i < train.size(); ++i) seen.insert(train.target(i));
  for (std::size_t i = 0; i < test.size(); ++i)
    EXPECT_EQ(seen.count(test.target(i)), 0u);
}

TEST(Dataset, KFoldPartitionsCompletely) {
  const Dataset d = small_dataset(30);
  Rng rng(7);
  const auto folds = d.kfold(5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::multiset<double> all_test;
  for (const auto& [train, test] : folds) {
    EXPECT_EQ(train.size() + test.size(), 30u);
    EXPECT_EQ(test.size(), 6u);
    for (std::size_t i = 0; i < test.size(); ++i)
      all_test.insert(test.target(i));
  }
  EXPECT_EQ(all_test.size(), 30u);  // every row tested exactly once
}

TEST(Dataset, WithExtraFeatures) {
  const Dataset d = small_dataset(4);
  Matrix extra(4, 1);
  for (std::size_t i = 0; i < 4; ++i) extra(i, 0) = 100.0 + i;
  const Dataset aug = d.with_extra_features(extra);
  EXPECT_EQ(aug.feature_count(), 3u);
  EXPECT_DOUBLE_EQ(aug.row(2)[2], 102.0);
  Matrix bad(3, 1);
  EXPECT_THROW(d.with_extra_features(bad), ContractViolation);
}

TEST(Dataset, ColumnViewMatchesRowMajorData) {
  const Dataset d = small_dataset(6);
  const auto c0 = d.column(0);
  const auto c1 = d.column(1);
  ASSERT_EQ(c0.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(c0[i], d.row(i)[0]);
    EXPECT_DOUBLE_EQ(c1[i], d.row(i)[1]);
  }
}

TEST(Dataset, ColumnCacheInvalidatedByAddRow) {
  Dataset d = small_dataset(3);
  EXPECT_DOUBLE_EQ(d.column(0)[2], 2.0);  // builds the cache
  d.add_row(std::vector<double>{50.0, 2500.0}, 150.0);
  const auto col = d.column(0);  // must rebuild, not serve the stale cache
  ASSERT_EQ(col.size(), 4u);
  EXPECT_DOUBLE_EQ(col[3], 50.0);
}

// Regression (TSan): column() used to re-read size() after the lock-free
// ready check when constructing the returned span, so the span's offset and
// length could mix the *new* row count with a cache built for the *old* one.
// The geometry now comes from the row count snapshotted under the build
// lock; a stale-but-consistent view is the documented contract.
TEST(Dataset, ColumnGeometryComesFromBuildSnapshot) {
  Dataset d = small_dataset(5);
  const auto before = d.column(1);  // build the cache at 5 rows
  ASSERT_EQ(before.size(), 5u);
  d.add_row(std::vector<double>{7.0, 49.0}, 21.0);  // invalidates
  const auto after = d.column(1);  // rebuilds at 6 rows
  ASSERT_EQ(after.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_DOUBLE_EQ(after[i], d.row(i)[1]);
}

// TSan stress: many threads race through the double-checked cache build and
// read every column concurrently — the access pattern of parallel forest
// training over one shared level dataset during cascade fits.  Run under
// -fsanitize=thread in CI; in a plain build it still verifies every view is
// bitwise correct.
TEST(Dataset, TSanConcurrentColumnReadsDuringCascadeTraining) {
  for (int round = 0; round < 8; ++round) {
    const Dataset d = small_dataset(64);  // fresh dataset: cold cache
    constexpr std::size_t kThreads = 8;
    std::atomic<int> errors{0};
    std::vector<std::thread> readers;
    readers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      readers.emplace_back([&d, &errors] {
        for (int iter = 0; iter < 50; ++iter) {
          for (std::size_t f = 0; f < d.feature_count(); ++f) {
            const auto col = d.column(f);
            if (col.size() != d.size()) ++errors;
            for (std::size_t i = 0; i < col.size(); ++i)
              if (col[i] != d.row(i)[f]) ++errors;
          }
        }
      });
    }
    for (auto& r : readers) r.join();
    EXPECT_EQ(errors.load(), 0);
  }

  // Same race exercised through the pool the cascade actually uses.
  const Dataset d = small_dataset(128);
  std::atomic<int> errors{0};
  ThreadPool::global().parallel_for(0, 64, [&](std::size_t task) {
    const std::size_t f = task % d.feature_count();
    const auto col = d.column(f);
    for (std::size_t i = 0; i < col.size(); ++i)
      if (col[i] != d.row(i)[f]) ++errors;
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST(Dataset, ColumnSurvivesCopy) {
  const Dataset d = small_dataset(4);
  (void)d.column(1);  // warm the cache on the source
  const Dataset copy = d;  // cache is dropped, not shared
  const auto col = copy.column(1);
  ASSERT_EQ(col.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(col[i], copy.row(i)[1]);
}

// PR-9 regression: add_row used to invalidate the whole column cache, so a
// warm-refit over a grown dataset paid a full rebuild AND any span handed
// out before the append dangled.  The delta-append protocol extends the
// columns in place and *retires* (never frees) superseded buffers.
TEST(Dataset, ColumnSpansSurviveAppendsBitwise) {
  Dataset d = small_dataset(8);
  const auto col0 = d.column(0);  // build + pin the cache
  const auto col1 = d.column(1);
  ASSERT_EQ(col0.size(), 8u);
  const std::vector<double> snap0(col0.begin(), col0.end());
  const std::vector<double> snap1(col1.begin(), col1.end());
  // Grow far past the cache's initial headroom so every column buffer
  // reallocates at least once.
  for (std::size_t i = 0; i < 600; ++i) {
    const double a = static_cast<double>(100 + i);
    d.add_row(std::vector<double>{a, a * a}, 3.0 * a);
  }
  // The pre-append spans still dereference and read bitwise what they did.
  EXPECT_EQ(std::memcmp(col0.data(), snap0.data(), 8 * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(col1.data(), snap1.data(), 8 * sizeof(double)), 0);
  // Fresh spans cover the grown column: original prefix bitwise unchanged,
  // appended values in place.
  const auto grown0 = d.column(0);
  ASSERT_EQ(grown0.size(), 608u);
  EXPECT_EQ(std::memcmp(grown0.data(), snap0.data(), 8 * sizeof(double)), 0);
  EXPECT_DOUBLE_EQ(grown0[8], 100.0);
  EXPECT_DOUBLE_EQ(grown0[607], 699.0);
  EXPECT_DOUBLE_EQ(d.column(1)[607], 699.0 * 699.0);
}

TEST(Dataset, ConcurrentReadersSeeConsistentPrefixDuringAppends) {
  Dataset d = small_dataset(16);
  (void)d.column(0);  // build the cache before the writer starts
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  // Row i is {i, i*i}: any prefix a reader snapshots must obey that.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto col = d.column(0);
      for (std::size_t i = 0; i < col.size(); i += 7)
        if (col[i] != static_cast<double>(i)) ++errors;
    }
  });
  for (std::size_t i = 16; i < 3000; ++i) {
    const double a = static_cast<double>(i);
    d.add_row(std::vector<double>{a, a * a}, 3.0 * a);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(d.column(0).size(), 3000u);
}

}  // namespace
}  // namespace stac::ml

// Fast-engine (pre-drawn CRN streams + 4-ary lazy-deletion heap) vs the
// legacy single-heap engine: the two must process the identical event
// sequence and produce bit-identical results on every field, including
// under heavy boost churn (stale-generation completions after class
// switch/revert must be dropped, never applied) and under chaos.
#include "queueing/ggk_simulator.hpp"

#include <gtest/gtest.h>

#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"

namespace stac::queueing {
namespace {

void expect_bit_identical(const GGkResult& legacy, const GGkResult& fast,
                          const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(legacy.completed, fast.completed);
  EXPECT_EQ(legacy.boosted_queries, fast.boosted_queries);
  EXPECT_EQ(legacy.cos_switches, fast.cos_switches);
  EXPECT_EQ(legacy.residual_boost_refs, fast.residual_boost_refs);
  EXPECT_EQ(legacy.residual_overdue_jobs, fast.residual_overdue_jobs);
  EXPECT_EQ(legacy.negative_sojourns, fast.negative_sojourns);
  EXPECT_EQ(legacy.latency_injections, fast.latency_injections);
  // Bitwise equality of every retained sample, in completion order.
  const auto ls = legacy.response_times.samples();
  const auto fs = fast.response_times.samples();
  ASSERT_EQ(ls.size(), fs.size());
  for (std::size_t i = 0; i < ls.size(); ++i)
    ASSERT_EQ(ls[i], fs[i]) << "response sample " << i << " diverges";
  const auto lq = legacy.queue_delays.samples();
  const auto fq = fast.queue_delays.samples();
  ASSERT_EQ(lq.size(), fq.size());
  for (std::size_t i = 0; i < lq.size(); ++i)
    ASSERT_EQ(lq[i], fq[i]) << "queue-delay sample " << i << " diverges";
  EXPECT_EQ(legacy.mean_queue_delay, fast.mean_queue_delay);
}

std::pair<GGkResult, GGkResult> run_both(GGkConfig c) {
  c.fast_events = false;
  const GGkResult legacy = simulate_ggk(c);
  c.fast_events = true;
  const GGkResult fast = simulate_ggk(c);
  return {legacy, fast};
}

TEST(GGkFastEngine, BitIdenticalUnderAdversarialSweep) {
  // Heavy tail, near-saturation, both boost semantics, aggressive and lazy
  // timeouts, multiple seeds: the corners where event ordering, lazy
  // deletion and tie-breaking could plausibly diverge.
  for (const double cv : {0.3, 1.0, 2.5}) {
    for (const double util : {0.5, 0.95}) {
      for (const bool class_level : {true, false}) {
        for (const double timeout : {0.25, 2.0}) {
          for (const std::uint64_t seed : {7u, 99u}) {
            GGkConfig c;
            c.utilization = util;
            c.servers = 3;
            c.mean_service = 1.0;
            c.service_cv = cv;
            c.timeout_rel = timeout;
            c.effective_allocation = 0.6;
            c.allocation_ratio = 3.0;
            c.class_level_boost = class_level;
            c.queries = 6000;
            c.warmup = 300;
            c.seed = seed;
            const auto [legacy, fast] = run_both(c);
            expect_bit_identical(
                legacy, fast,
                "cv=" + std::to_string(cv) + " util=" + std::to_string(util) +
                    " class=" + std::to_string(class_level) +
                    " timeout=" + std::to_string(timeout) +
                    " seed=" + std::to_string(seed));
          }
        }
      }
    }
  }
}

TEST(GGkFastEngine, StaleGenerationsDroppedAcrossBoostChurn) {
  // An aggressive timeout at heavy load produces many class switch/revert
  // cycles; every switch reschedules all serving jobs and strands the
  // previously queued completions as stale generations.  If any stale event
  // were applied, completion times (and hence the bitwise comparison or the
  // teardown invariants) would diverge.
  GGkConfig c;
  c.utilization = 0.93;
  c.servers = 2;
  c.service_cv = 1.5;
  c.timeout_rel = 0.5;
  c.effective_allocation = 0.6;
  c.allocation_ratio = 3.0;
  c.queries = 20000;
  c.warmup = 500;
  c.seed = 31;
  const auto [legacy, fast] = run_both(c);
  // Churn actually happened (both directions of the class switch).
  EXPECT_GT(fast.cos_switches, 10u);
  EXPECT_GT(fast.boosted_queries, 0u);
  expect_bit_identical(legacy, fast, "boost churn");
  EXPECT_EQ(fast.residual_boost_refs, fast.residual_overdue_jobs);
}

TEST(GGkFastEngine, BitIdenticalUnderServiceChaos) {
  FaultPlan plan;
  plan.seed = 4321;
  plan.add({.point = "ggk.service",
            .action = FaultAction::kLatency,
            .probability = 0.1,
            .latency = 5.0});
  FaultScope scope(plan);

  GGkConfig c;
  c.utilization = 0.9;
  c.servers = 2;
  c.service_cv = 2.0;
  c.timeout_rel = 0.5;
  c.effective_allocation = 0.6;
  c.allocation_ratio = 3.0;
  c.queries = 10000;
  c.warmup = 500;
  c.seed = 3;
  const auto [legacy, fast] = run_both(c);
  EXPECT_GT(fast.latency_injections, 0u);
  expect_bit_identical(legacy, fast, "service chaos");
}

TEST(GGkFastEngine, CrnStreamCacheReusesAcrossTimeoutGrid) {
  clear_crn_stream_cache();
  auto& reg = obs::MetricsRegistry::global();
  const auto hits0 = reg.counter_value("ggk.crn_stream_hits");
  const auto misses0 = reg.counter_value("ggk.crn_stream_misses");

  GGkConfig c;
  c.utilization = 0.8;
  c.servers = 2;
  c.service_cv = 1.0;
  c.effective_allocation = 0.6;
  c.allocation_ratio = 3.0;
  c.queries = 4000;
  c.warmup = 200;
  c.seed = 77;
  // A timeout grid at fixed (seed, load): one regeneration, then replays.
  GGkResult first;
  std::size_t cells = 0;
  for (const double timeout : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    c.timeout_rel = timeout;
    const GGkResult r = simulate_ggk(c);
    if (cells++ == 0) first = r;
    EXPECT_EQ(r.completed, first.completed);
  }
  EXPECT_EQ(reg.counter_value("ggk.crn_stream_misses"), misses0 + 1);
  EXPECT_EQ(reg.counter_value("ggk.crn_stream_hits"), hits0 + cells - 1);

  // A replayed cell is bit-identical to a cold regeneration of it.
  clear_crn_stream_cache();
  c.timeout_rel = 0.5;
  const GGkResult cold = simulate_ggk(c);
  c.timeout_rel = 4.0;  // intervening cell shares the stream (same key)
  (void)simulate_ggk(c);
  c.timeout_rel = 0.5;
  const GGkResult warm = simulate_ggk(c);
  expect_bit_identical(cold, warm, "cold vs warm replay");
}

TEST(GGkFastEngine, FastPathIsTheDefault) {
  EXPECT_TRUE(GGkConfig{}.fast_events);
}

}  // namespace
}  // namespace stac::queueing

#include "queueing/testbed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "wl/benchmark_suite.hpp"

namespace stac::queueing {
namespace {

constexpr double kWayBytes = 2.0 * 1024 * 1024;

class TestbedTest : public ::testing::Test {
 protected:
  TestbedTest()
      : kmeans_(wl::make_model(wl::Benchmark::kKmeans, 20, kWayBytes, 1)),
        bfs_(wl::make_model(wl::Benchmark::kBfs, 20, kWayBytes, 1)),
        plan_(cat::make_pair_plan(20, 1, 2)) {}

  TestbedConfig config(double timeout0, double timeout1, double util = 0.8,
                       std::uint64_t seed = 5) const {
    TestbedConfig cfg;
    TestbedWorkload w0;
    w0.model = &kmeans_;
    w0.utilization = util;
    w0.time_scale = 1.0 / 5.0;  // kmeans base 5 s -> 1 unit
    TestbedWorkload w1;
    w1.model = &bfs_;
    w1.utilization = util;
    w1.time_scale = 1.0 / 3.0;  // bfs base 3 s -> 1 unit
    cfg.workloads = {w0, w1};
    cfg.staps = cat::make_stap_vector(plan_, {timeout0, timeout1});
    cfg.target_completions = 1200;
    cfg.warmup_completions = 100;
    cfg.seed = seed;
    return cfg;
  }

  wl::WorkloadModel kmeans_;
  wl::WorkloadModel bfs_;
  cat::AllocationPlan plan_;
};

// Regression: mean_rt()/p95_rt() used to throw (vector::at out-of-range or
// a percentile-of-empty ContractViolation) for unknown workload ids and for
// runs with zero counted completions — both reachable under heavy fault
// injection.  They now report quiet NaN, the "no data" value every caller
// can branch on.
TEST_F(TestbedTest, RtAccessorsReturnNaNForUnknownOrEmptyWorkloads) {
  TestbedResult empty;  // no workloads at all
  EXPECT_TRUE(std::isnan(empty.mean_rt(0)));
  EXPECT_TRUE(std::isnan(empty.p95_rt(0)));

  const TestbedResult r = Testbed(config(6.0, 6.0)).run();
  EXPECT_TRUE(std::isnan(r.mean_rt(99)));  // out-of-range id
  EXPECT_TRUE(std::isnan(r.p95_rt(99)));
  EXPECT_FALSE(std::isnan(r.mean_rt(0)));  // healthy ids unaffected
  EXPECT_FALSE(std::isnan(r.p95_rt(0)));

  TestbedResult zero;  // a workload slot that completed nothing
  zero.per_workload.resize(1);
  EXPECT_TRUE(std::isnan(zero.mean_rt(0)));
  EXPECT_TRUE(std::isnan(zero.p95_rt(0)));
}

TEST_F(TestbedTest, CompletesRequestedQueries) {
  Testbed bed(config(6.0, 6.0));
  const TestbedResult r = bed.run();
  ASSERT_EQ(r.per_workload.size(), 2u);
  EXPECT_EQ(r.per_workload[0].completed, 1200u);
  EXPECT_EQ(r.per_workload[1].completed, 1200u);
  EXPECT_FALSE(r.hit_event_cap);
  EXPECT_GT(r.sim_time, 0.0);
}

TEST_F(TestbedTest, DeterministicForSeed) {
  const TestbedResult a = Testbed(config(1.0, 1.0)).run();
  const TestbedResult b = Testbed(config(1.0, 1.0)).run();
  EXPECT_DOUBLE_EQ(a.mean_rt(0), b.mean_rt(0));
  EXPECT_DOUBLE_EQ(a.p95_rt(1), b.p95_rt(1));
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST_F(TestbedTest, NeverBoostStaysAtPrivateWays) {
  const TestbedResult r = Testbed(config(6.0, 6.0)).run();
  EXPECT_NEAR(r.per_workload[0].mean_effective_ways, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.per_workload[0].boost_time_fraction, 0.0);
  EXPECT_EQ(r.per_workload[0].boosted_queries, 0u);
  EXPECT_EQ(r.per_workload[0].cos_switches, 0u);
}

TEST_F(TestbedTest, BoostingImprovesResponseTime) {
  const TestbedResult never = Testbed(config(6.0, 6.0)).run();
  const TestbedResult boosted = Testbed(config(1.0, 1.0)).run();
  EXPECT_LT(boosted.mean_rt(0), never.mean_rt(0));
  EXPECT_LT(boosted.mean_rt(1), never.mean_rt(1));
  EXPECT_GT(boosted.per_workload[0].boost_time_fraction, 0.0);
  EXPECT_GT(boosted.per_workload[0].mean_effective_ways, 1.0);
  EXPECT_GT(boosted.per_workload[0].cos_switches, 0u);
}

TEST_F(TestbedTest, HigherUtilizationRaisesResponseTime) {
  const TestbedResult lo = Testbed(config(6.0, 6.0, 0.4)).run();
  const TestbedResult hi = Testbed(config(6.0, 6.0, 0.9)).run();
  EXPECT_LT(lo.mean_rt(0), hi.mean_rt(0));
}

TEST_F(TestbedTest, ServiceDurationBoundedByMrcRange) {
  // Even fully boosted, service cannot beat the all-shared-ways time.
  const TestbedResult r = Testbed(config(0.0, 6.0)).run();
  const double best = kmeans_.mean_service_time(3.0) / 5.0;   // scaled
  const double worst = kmeans_.mean_service_time(1.0) / 5.0;  // scaled
  const double mean_service = r.per_workload[0].service_durations.mean();
  EXPECT_GT(mean_service, 0.8 * best);
  EXPECT_LT(mean_service, 1.3 * worst);
}

TEST_F(TestbedTest, AggressiveNeighbourErodesOccupancy) {
  // w0 boosting alone vs. both boosting: w0's effective ways shrink when
  // the neighbour contends for the shared region.
  const TestbedResult solo = Testbed(config(0.5, 6.0)).run();
  const TestbedResult both = Testbed(config(0.5, 0.0)).run();
  EXPECT_GT(solo.per_workload[0].mean_effective_ways,
            both.per_workload[0].mean_effective_ways);
}

TEST_F(TestbedTest, TraceSamplingProducesTimeline) {
  TestbedConfig cfg = config(1.0, 1.0);
  cfg.sample_interval = 0.5;
  const TestbedResult r = Testbed(cfg).run();
  EXPECT_GT(r.trace.size(), 10u);
  double prev = 0.0;
  for (const auto& s : r.trace) {
    EXPECT_GT(s.time, prev - 1e-12);
    prev = s.time;
    ASSERT_EQ(s.per_workload.size(), 2u);
    EXPECT_LE(s.per_workload[0].busy, 2u);
    EXPECT_GE(s.per_workload[0].effective_ways, 1.0);
    EXPECT_LE(s.per_workload[0].effective_ways, 3.0 + 1e-9);
  }
}

TEST_F(TestbedTest, NoTraceWithoutInterval) {
  const TestbedResult r = Testbed(config(1.0, 1.0)).run();
  EXPECT_TRUE(r.trace.empty());
}

TEST_F(TestbedTest, EventCapStopsRun) {
  TestbedConfig cfg = config(0.0, 0.0);
  cfg.max_events = 5000;
  const TestbedResult r = Testbed(cfg).run();
  EXPECT_TRUE(r.hit_event_cap);
}

TEST_F(TestbedTest, QueueDelayPlusServiceEqualsResponse) {
  const TestbedResult r = Testbed(config(2.0, 2.0)).run();
  const double lhs = r.per_workload[0].queue_delays.mean() +
                     r.per_workload[0].service_durations.mean();
  EXPECT_NEAR(lhs, r.mean_rt(0), 1e-6 * r.mean_rt(0));
}

TEST_F(TestbedTest, FaultCountersZeroWithoutChaos) {
  TestbedConfig cfg = config(1.0, 1.0);
  cfg.sample_interval = 0.5;
  const TestbedResult r = Testbed(cfg).run();
  EXPECT_EQ(r.faults.dropped_samples, 0u);
  EXPECT_EQ(r.faults.corrupted_samples, 0u);
  EXPECT_EQ(r.faults.latency_injections, 0u);
  EXPECT_EQ(r.faults.watchdog_revocations, 0u);
}

TEST_F(TestbedTest, ChaosDropsAndCorruptsTraceSamples) {
  TestbedConfig cfg = config(1.0, 1.0);
  cfg.sample_interval = 0.5;
  const std::size_t clean_samples = Testbed(cfg).run().trace.size();

  FaultPlan plan;
  plan.seed = 17;
  plan.add({.point = "profiler.sample",
            .action = FaultAction::kDrop,
            .probability = 0.15});
  plan.add({.point = "profiler.sample",
            .action = FaultAction::kCorrupt,
            .probability = 0.10,
            .corrupt_factor = 8.0});
  FaultScope scope(plan);
  const TestbedResult r = Testbed(cfg).run();
  EXPECT_GT(r.faults.dropped_samples, 0u);
  EXPECT_GT(r.faults.corrupted_samples, 0u);
  EXPECT_EQ(r.trace.size() + r.faults.dropped_samples, clean_samples);

  // Same seeds -> identical fault schedule and counters.
  const TestbedResult r2 = Testbed(cfg).run();
  EXPECT_EQ(r2.faults.dropped_samples, r.faults.dropped_samples);
  EXPECT_EQ(r2.faults.corrupted_samples, r.faults.corrupted_samples);
  EXPECT_EQ(r2.trace.size(), r.trace.size());
}

TEST_F(TestbedTest, ServiceLatencyInjectionSlowsQueries) {
  const double clean_rt = Testbed(config(6.0, 6.0)).run().mean_rt(0);

  FaultPlan plan;
  plan.seed = 23;
  plan.add({.point = "testbed.service",
            .action = FaultAction::kLatency,
            .probability = 0.2,
            .latency = 1.0});
  FaultScope scope(plan);
  const TestbedResult r = Testbed(config(6.0, 6.0)).run();
  EXPECT_GT(r.faults.latency_injections, 0u);
  EXPECT_GT(r.mean_rt(0), clean_rt);
}

TEST_F(TestbedTest, LeaseWatchdogRevokesLongBoosts) {
  // Aggressive boosting with a short lease: the watchdog must fire and the
  // run must still satisfy the teardown refcount invariant.
  TestbedConfig cfg = config(0.3, 0.3, 0.9);
  const double clean_boost_frac =
      Testbed(cfg).run().per_workload[0].boost_time_fraction;
  cfg.max_boost_lease_rel = 1.0;
  const TestbedResult r = Testbed(cfg).run();
  EXPECT_GT(r.faults.watchdog_revocations, 0u);
  // Revoked leases cap how long the class can stay boosted.
  EXPECT_LT(r.per_workload[0].boost_time_fraction, clean_boost_frac);
  for (const auto& w : r.per_workload)
    EXPECT_EQ(w.final_boost_refs, w.final_inflight_boosted);
}

TEST_F(TestbedTest, TeardownRefcountInvariantUnderCombinedChaos) {
  FaultPlan plan;
  plan.seed = 31;
  plan.add({.point = "testbed.service",
            .action = FaultAction::kLatency,
            .probability = 0.1,
            .latency = 2.0});
  plan.add({.point = "profiler.sample",
            .action = FaultAction::kDrop,
            .probability = 0.1});
  FaultScope scope(plan);
  TestbedConfig cfg = config(0.5, 0.5, 0.9);
  cfg.sample_interval = 0.5;
  cfg.max_boost_lease_rel = 2.0;
  const TestbedResult r = Testbed(cfg).run();
  ASSERT_EQ(r.per_workload.size(), 2u);
  for (const auto& w : r.per_workload) {
    EXPECT_EQ(w.final_boost_refs, w.final_inflight_boosted);
    EXPECT_EQ(w.completed, 1200u);
  }
}

TEST(TestbedChain, ThreeWorkloadChainCollocation) {
  // The maximal structure §2's conjectures permit: a chain where each
  // shared region has exactly two sharers and the middle workload can
  // reach both regions.
  constexpr double kWayBytes = 2.0 * 1024 * 1024;
  const auto m0 = wl::make_model(wl::Benchmark::kKmeans, 20, kWayBytes, 2);
  const auto m1 = wl::make_model(wl::Benchmark::kBfs, 20, kWayBytes, 2);
  const auto m2 = wl::make_model(wl::Benchmark::kKnn, 20, kWayBytes, 2);
  const cat::AllocationPlan plan = cat::make_chain_plan(20, 3, 2, 2);
  ASSERT_TRUE(plan.sharing_degree_at_most_two());

  auto run = [&](double t0, double t1, double t2) {
    TestbedConfig cfg;
    TestbedWorkload w0, w1, w2;
    w0.model = &m0;
    w0.utilization = 0.8;
    w0.time_scale = 1.0 / 5.0;
    w1.model = &m1;
    w1.utilization = 0.8;
    w1.time_scale = 1.0 / 3.0;
    w2.model = &m2;
    w2.utilization = 0.8;
    w2.time_scale = 1.0 / 2.0;
    cfg.workloads = {w0, w1, w2};
    cfg.staps = cat::make_stap_vector(plan, {t0, t1, t2});
    cfg.target_completions = 800;
    cfg.warmup_completions = 80;
    cfg.seed = 77;
    Testbed bed(cfg);
    return bed.run();
  };

  const TestbedResult never = run(6.0, 6.0, 6.0);
  ASSERT_EQ(never.per_workload.size(), 3u);
  for (const auto& w : never.per_workload) {
    EXPECT_EQ(w.completed, 800u);
    EXPECT_NEAR(w.mean_effective_ways, 2.0, 1e-9);
  }

  // Middle workload boosting alone can reach both shared regions: up to
  // 2 private + 2x2 shared = 6 effective ways.
  const TestbedResult mid = run(6.0, 0.0, 6.0);
  EXPECT_GT(mid.per_workload[1].mean_effective_ways, 3.0);
  EXPECT_LE(mid.per_workload[1].mean_effective_ways, 6.0 + 1e-9);
  EXPECT_LT(mid.mean_rt(1), never.mean_rt(1));
  // Ends stay at their private baseline.
  EXPECT_NEAR(mid.per_workload[0].mean_effective_ways, 2.0, 1e-9);
  EXPECT_NEAR(mid.per_workload[2].mean_effective_ways, 2.0, 1e-9);

  // All three boosting: everyone improves vs never-boost, and the middle
  // workload's gain shrinks relative to boosting alone (contention on
  // both of its regions).
  const TestbedResult all = run(0.5, 0.5, 0.5);
  for (std::size_t w = 0; w < 3; ++w)
    EXPECT_LT(all.mean_rt(w), never.mean_rt(w) * 1.05);
  EXPECT_LT(all.per_workload[1].mean_effective_ways,
            mid.per_workload[1].mean_effective_ways);
}

TEST(TestbedStatics, EffectiveAllocationFormula) {
  // Speedup 1.5 over allocation increase 3 -> EA = 0.5.
  EXPECT_DOUBLE_EQ(Testbed::effective_allocation(2.0, 3.0, 3.0), 0.5);
  // No speedup -> EA = 1/ratio.
  EXPECT_DOUBLE_EQ(Testbed::effective_allocation(3.0, 3.0, 3.0), 1.0 / 3.0);
  // Perfect conversion: speedup == ratio -> EA = 1.
  EXPECT_DOUBLE_EQ(Testbed::effective_allocation(1.0, 3.0, 3.0), 1.0);
  EXPECT_THROW(Testbed::effective_allocation(0.0, 1.0, 2.0),
               ContractViolation);
}

TEST(TestbedConfigValidation, RejectsBadInputs) {
  TestbedConfig cfg;
  EXPECT_THROW(Testbed{cfg}, ContractViolation);  // no workloads
}

}  // namespace
}  // namespace stac::queueing

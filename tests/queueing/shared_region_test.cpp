#include "queueing/shared_region.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace stac::queueing {
namespace {

using cat::AllocationPlan;
using cat::make_chain_plan;
using cat::make_pair_plan;

TEST(FindSharedRegions, PairPlanHasOneRegion) {
  const auto regions = find_shared_regions(make_pair_plan(8, 1, 2));
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].first_way, 1u);
  EXPECT_EQ(regions[0].way_count, 2u);
  EXPECT_EQ(regions[0].sharers, (std::vector<std::size_t>{0, 1}));
}

TEST(FindSharedRegions, ChainPlanHasRegionPerLink) {
  const auto regions = find_shared_regions(make_chain_plan(10, 3, 2, 1));
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].sharers, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(regions[1].sharers, (std::vector<std::size_t>{1, 2}));
}

TEST(FindSharedRegions, NoSharingNoRegions) {
  std::vector<cat::PolicyAllocations> ps{
      {{0, 2}, {0, 2}},
      {{2, 2}, {2, 2}},
  };
  EXPECT_TRUE(find_shared_regions(AllocationPlan(4, ps)).empty());
}

class OccupancyTest : public ::testing::Test {
 protected:
  OccupancyTest() : model_(make_pair_plan(8, 1, 2)) {}
  OccupancyModel model_;
};

TEST_F(OccupancyTest, ColdStart) {
  EXPECT_EQ(model_.region_count(), 1u);
  EXPECT_DOUBLE_EQ(model_.occupancy(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model_.effective_ways(0), 1.0);  // private only
  EXPECT_DOUBLE_EQ(model_.effective_ways(1), 1.0);
}

TEST_F(OccupancyTest, SoleFillerTakesWholeRegion) {
  model_.set_fill_rate(0, 2.0);
  model_.advance(10.0);
  EXPECT_NEAR(model_.occupancy(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(model_.effective_ways(0), 3.0, 1e-5);  // 1 private + 2 shared
  EXPECT_DOUBLE_EQ(model_.effective_ways(1), 1.0);
}

TEST_F(OccupancyTest, FreeSpaceFillsLinearly) {
  model_.set_fill_rate(0, 0.5);  // half a region per unit time
  model_.advance(1.0);
  EXPECT_NEAR(model_.occupancy(0, 0), 0.5, 1e-9);
  EXPECT_NEAR(model_.effective_ways(0), 2.0, 1e-6);
}

TEST_F(OccupancyTest, EquilibriumProportionalToFillRates) {
  model_.set_fill_rate(0, 3.0);
  model_.set_fill_rate(1, 1.0);
  model_.advance(50.0);
  EXPECT_NEAR(model_.occupancy(0, 0), 0.75, 0.01);
  EXPECT_NEAR(model_.occupancy(0, 1), 0.25, 0.01);
}

TEST_F(OccupancyTest, ResidualOccupancyPersistsUntilDisplaced) {
  // Workload 0 fills the region, then stops (boost revoked).
  model_.set_fill_rate(0, 2.0);
  model_.advance(10.0);
  model_.set_fill_rate(0, 0.0);
  // Nobody fills: occupancy frozen (CAT hits-anywhere residual benefit).
  model_.advance(100.0);
  EXPECT_NEAR(model_.occupancy(0, 0), 1.0, 1e-6);
  // Neighbour starts filling: workload 0's share decays exponentially.
  model_.set_fill_rate(1, 1.0);
  model_.advance(1.0);
  EXPECT_NEAR(model_.occupancy(0, 0), std::exp(-1.0), 0.02);
  model_.advance(50.0);
  EXPECT_NEAR(model_.occupancy(0, 1), 1.0, 1e-3);
}

TEST_F(OccupancyTest, TotalOccupancyNeverExceedsOne) {
  model_.set_fill_rate(0, 5.0);
  model_.set_fill_rate(1, 3.0);
  for (int i = 0; i < 100; ++i) {
    model_.advance(0.05);
    const double total = model_.occupancy(0, 0) + model_.occupancy(0, 1);
    EXPECT_LE(total, 1.0 + 1e-9);
  }
}

TEST_F(OccupancyTest, SuggestedStepInfiniteAtRest) {
  EXPECT_TRUE(std::isinf(model_.suggested_step(0.05)));
  model_.set_fill_rate(0, 2.0);
  EXPECT_NEAR(model_.suggested_step(0.05), 0.125, 1e-9);  // 0.25 / 2.0
  // At equilibrium the step becomes infinite again.
  model_.advance(100.0);
  EXPECT_TRUE(std::isinf(model_.suggested_step(0.05)));
}

TEST_F(OccupancyTest, ResetClearsState) {
  model_.set_fill_rate(0, 1.0);
  model_.advance(5.0);
  model_.reset();
  EXPECT_DOUBLE_EQ(model_.occupancy(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model_.effective_ways(0), 1.0);
}

TEST_F(OccupancyTest, NonSharerUnaffected) {
  OccupancyModel chain(make_chain_plan(10, 3, 2, 1));
  chain.set_fill_rate(0, 10.0);
  chain.advance(10.0);
  // Workload 2 shares only the second region, untouched by w0's fills.
  EXPECT_DOUBLE_EQ(chain.occupancy(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(chain.effective_ways(2), 2.0);
  // Workload 1 shares region 0 with w0 but did not fill.
  EXPECT_DOUBLE_EQ(chain.occupancy(0, 1), 0.0);
}

TEST_F(OccupancyTest, MiddleWorkloadFillsBothRegions) {
  OccupancyModel chain(make_chain_plan(10, 3, 2, 1));
  chain.set_fill_rate(1, 2.0);
  chain.advance(20.0);
  EXPECT_NEAR(chain.occupancy(0, 1), 1.0, 1e-6);
  EXPECT_NEAR(chain.occupancy(1, 1), 1.0, 1e-6);
  // 2 private + 1.0 * 1 way + 1.0 * 1 way.
  EXPECT_NEAR(chain.effective_ways(1), 4.0, 1e-5);
}

TEST_F(OccupancyTest, ChurnErodesIdleOccupancy) {
  model_.set_background_churn(0.5);
  model_.set_fill_rate(0, 5.0);
  model_.advance(20.0);
  // Equilibrium against churn: phi / (phi + churn).
  EXPECT_NEAR(model_.occupancy(0, 0), 5.0 / 5.5, 0.01);
  // Stop filling: occupancy decays at the churn rate even though the
  // neighbour is idle — the "short-term" in short-term allocation.
  model_.set_fill_rate(0, 0.0);
  const double before = model_.occupancy(0, 0);
  model_.advance(2.0);
  EXPECT_NEAR(model_.occupancy(0, 0), before * std::exp(-0.5 * 2.0), 0.01);
  model_.advance(100.0);
  EXPECT_LT(model_.occupancy(0, 0), 0.01);
}

TEST_F(OccupancyTest, ChurnLowersEquilibriumShare) {
  OccupancyModel churned(make_pair_plan(8, 1, 2));
  churned.set_background_churn(1.0);
  churned.set_fill_rate(0, 1.0);
  churned.set_fill_rate(1, 1.0);
  churned.advance(50.0);
  // Each holds phi / (phi_total + churn) = 1/3 instead of 1/2.
  EXPECT_NEAR(churned.occupancy(0, 0), 1.0 / 3.0, 0.01);
  EXPECT_NEAR(churned.occupancy(0, 1), 1.0 / 3.0, 0.01);
}

TEST_F(OccupancyTest, ChurnSuggestsFiniteStepsUntilEquilibrium) {
  model_.set_background_churn(0.5);
  model_.set_fill_rate(0, 1.5);
  EXPECT_TRUE(std::isfinite(model_.suggested_step(0.05)));
  model_.advance(100.0);
  EXPECT_TRUE(std::isinf(model_.suggested_step(0.05)));
}

TEST_F(OccupancyTest, ThrashDiscountsConcurrentSharers) {
  model_.set_thrash_sensitivity(1.0);
  model_.set_fill_rate(0, 2.0);
  model_.advance(50.0);
  // Sole filler, no churn: no thrash penalty from others.
  EXPECT_NEAR(model_.effective_ways(0), 3.0, 1e-3);
  // Neighbour starts filling at the same rate: occupancy splits AND each
  // side's benefit is discounted by the other's fill pressure.
  model_.set_fill_rate(1, 2.0);
  model_.advance(50.0);
  const double occ0 = model_.occupancy(0, 0);
  EXPECT_NEAR(occ0, 0.5, 0.01);
  const double expected = 1.0 + 2.0 * occ0 / (1.0 + 1.0 * 2.0);
  EXPECT_NEAR(model_.effective_ways(0), expected, 0.02);
  EXPECT_LT(model_.effective_ways(0), 1.0 + 2.0 * occ0);  // strictly worse
}

TEST_F(OccupancyTest, ThrashZeroIsNeutral) {
  model_.set_thrash_sensitivity(0.0);
  model_.set_fill_rate(0, 1.0);
  model_.set_fill_rate(1, 1.0);
  model_.advance(50.0);
  EXPECT_NEAR(model_.effective_ways(0),
              1.0 + 2.0 * model_.occupancy(0, 0), 1e-6);
}

TEST_F(OccupancyTest, ChurnAndThrashValidation) {
  EXPECT_THROW(model_.set_background_churn(-1.0), ContractViolation);
  EXPECT_THROW(model_.set_thrash_sensitivity(-0.1), ContractViolation);
}

}  // namespace
}  // namespace stac::queueing

// Batch entry point vs per-cell simulate_ggk: one arena, shared CRN
// streams, and — the contract everything above it leans on — bit-identical
// per-cell results, including mixed fast/legacy cells and chaos runs.
// Also pins the CRN stream cache's capacity knob and growth bound.
#include "queueing/ggk_simulator.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"

namespace stac::queueing {
namespace {

void expect_bit_identical(const GGkResult& a, const GGkResult& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.boosted_queries, b.boosted_queries);
  EXPECT_EQ(a.cos_switches, b.cos_switches);
  EXPECT_EQ(a.residual_boost_refs, b.residual_boost_refs);
  EXPECT_EQ(a.residual_overdue_jobs, b.residual_overdue_jobs);
  EXPECT_EQ(a.negative_sojourns, b.negative_sojourns);
  EXPECT_EQ(a.latency_injections, b.latency_injections);
  EXPECT_EQ(a.mean_queue_delay, b.mean_queue_delay);
  const auto as = a.response_times.samples();
  const auto bs = b.response_times.samples();
  ASSERT_EQ(as.size(), bs.size());
  for (std::size_t i = 0; i < as.size(); ++i)
    ASSERT_EQ(as[i], bs[i]) << "response sample " << i << " diverges";
  const auto aq = a.queue_delays.samples();
  const auto bq = b.queue_delays.samples();
  ASSERT_EQ(aq.size(), bq.size());
  for (std::size_t i = 0; i < aq.size(); ++i)
    ASSERT_EQ(aq[i], bq[i]) << "queue-delay sample " << i << " diverges";
}

/// The §5.2 shape: one (seed, load) stream replayed across a timeout grid,
/// with a couple of off-grid cells (different seed / utilization / engine)
/// mixed in so the batch cannot assume one stream fits all.
std::vector<GGkConfig> sweep_configs() {
  std::vector<GGkConfig> configs;
  for (const double timeout : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    GGkConfig c;
    c.utilization = 0.85;
    c.servers = 2;
    c.service_cv = 1.2;
    c.timeout_rel = timeout;
    c.effective_allocation = 0.6;
    c.allocation_ratio = 3.0;
    c.queries = 1200;
    c.warmup = 100;
    c.seed = 31;
    configs.push_back(c);
  }
  GGkConfig other = configs.front();
  other.seed = 77;  // second stream group
  configs.push_back(other);
  other.utilization = 0.5;  // third group (lambda differs)
  configs.push_back(other);
  GGkConfig legacy = configs.front();
  legacy.fast_events = false;  // reference engine routed per cell
  configs.push_back(legacy);
  return configs;
}

TEST(GGkBatch, BitIdenticalToPerCellSimulation) {
  const auto configs = sweep_configs();
  clear_crn_stream_cache();
  const std::vector<GGkResult> batch = simulate_ggk_batch(configs);
  ASSERT_EQ(batch.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const GGkResult solo = simulate_ggk(configs[i]);
    expect_bit_identical(solo, batch[i], "cell " + std::to_string(i));
  }
}

TEST(GGkBatch, EmptyBatchIsEmpty) {
  EXPECT_TRUE(simulate_ggk_batch({}).empty());
}

TEST(GGkBatch, SharesOneStreamAcrossTimeoutGrid) {
  // Five cells differing only in timeout consume one pre-drawn stream:
  // exactly one miss against a cold cache, and the batch reports four
  // shared fetches.
  clear_crn_stream_cache();
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t misses_before =
      registry.counter("ggk.crn_stream_misses").value();
  const std::uint64_t shared_before =
      registry.counter("ggk.batch.streams_shared").value();

  std::vector<GGkConfig> configs;
  for (const double timeout : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    GGkConfig c;
    c.utilization = 0.7;
    c.timeout_rel = timeout;
    c.allocation_ratio = 2.0;
    c.effective_allocation = 0.8;
    c.queries = 800;
    c.warmup = 80;
    c.seed = 404;
    configs.push_back(c);
  }
  (void)simulate_ggk_batch(configs);
  EXPECT_EQ(registry.counter("ggk.crn_stream_misses").value() - misses_before,
            1u);
  EXPECT_EQ(
      registry.counter("ggk.batch.streams_shared").value() - shared_before,
      4u);
}

TEST(GGkBatch, BitIdenticalUnderServiceChaos) {
  // Injected latency spikes are keyed on (seed, arrival ordinal), so the
  // batch hits exactly the faults the per-cell runs hit.
  FaultPlan plan;
  plan.seed = 5;
  plan.add({.point = "ggk.service",
            .action = FaultAction::kLatency,
            .probability = 0.25,
            .latency = 1.5});
  auto configs = sweep_configs();
  configs.resize(3);

  FaultScope scope(plan);
  const std::vector<GGkResult> batch = simulate_ggk_batch(configs);
  std::vector<GGkResult> solo;
  for (const GGkConfig& c : configs) solo.push_back(simulate_ggk(c));
  scope.disarm();

  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_bit_identical(solo[i], batch[i], "chaos cell " + std::to_string(i));
    EXPECT_GT(batch[i].latency_injections, 0u);
  }
}

TEST(GGkBatch, RejectsInvalidCellLikePerCell) {
  std::vector<GGkConfig> configs = sweep_configs();
  configs[1].utilization = 1.5;
  EXPECT_THROW((void)simulate_ggk_batch(configs), ContractViolation);
}

TEST(CrnStreamCache, CapacityKnobBoundsGrowth) {
  const std::size_t restore = crn_stream_cache_capacity();
  clear_crn_stream_cache();
  set_crn_stream_cache_capacity(4);
  EXPECT_EQ(crn_stream_cache_capacity(), 4u);

  // Drifting conditions: every simulation keys a fresh (seed) stream.  The
  // cache must flush at capacity instead of growing for the process
  // lifetime, and the size gauge must track the live entry count.
  GGkConfig c;
  c.utilization = 0.6;
  c.queries = 400;
  c.warmup = 40;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    c.seed = 1000 + seed;
    (void)simulate_ggk(c);
    EXPECT_LE(crn_stream_cache_size(), 4u);
  }
  EXPECT_EQ(
      static_cast<std::size_t>(obs::MetricsRegistry::global()
                                   .gauge("ggk.crn_stream_cache.size")
                                   .value()),
      crn_stream_cache_size());

  // Shrinking below the live count flushes immediately; zero clamps to 1.
  set_crn_stream_cache_capacity(0);
  EXPECT_EQ(crn_stream_cache_capacity(), 1u);
  c.seed = 9999;
  (void)simulate_ggk(c);
  EXPECT_EQ(crn_stream_cache_size(), 1u);

  set_crn_stream_cache_capacity(restore);
  clear_crn_stream_cache();
}

}  // namespace
}  // namespace stac::queueing

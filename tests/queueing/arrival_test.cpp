#include "queueing/arrival.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace stac::queueing {
namespace {

TEST(InterarrivalSampler, ExponentialMeanMatchesRate) {
  InterarrivalSampler s(ArrivalKind::kExponential, 5.0);
  Rng rng(3);
  StreamingStats st;
  for (int i = 0; i < 50000; ++i) st.add(s.sample(rng));
  EXPECT_NEAR(st.mean(), 0.2, 0.005);
  EXPECT_NEAR(st.cv(), 1.0, 0.03);  // exponential CV = 1
}

TEST(InterarrivalSampler, DeterministicIsConstant) {
  InterarrivalSampler s(ArrivalKind::kDeterministic, 4.0);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(s.sample(rng), 0.25);
}

TEST(InterarrivalSampler, LogNormalMeanAndCv) {
  InterarrivalSampler s(ArrivalKind::kLogNormal, 2.0, 0.5);
  Rng rng(5);
  StreamingStats st;
  for (int i = 0; i < 50000; ++i) st.add(s.sample(rng));
  EXPECT_NEAR(st.mean(), 0.5, 0.01);
  EXPECT_NEAR(st.cv(), 0.5, 0.03);
}

TEST(InterarrivalSampler, RejectsBadParameters) {
  EXPECT_THROW(InterarrivalSampler(ArrivalKind::kExponential, 0.0),
               ContractViolation);
  EXPECT_THROW(InterarrivalSampler(ArrivalKind::kLogNormal, 1.0, -1.0),
               ContractViolation);
}

}  // namespace
}  // namespace stac::queueing

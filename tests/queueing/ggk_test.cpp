#include "queueing/ggk_simulator.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/fault_injection.hpp"

namespace stac::queueing {
namespace {

GGkConfig base_config() {
  GGkConfig c;
  c.utilization = 0.7;
  c.servers = 1;
  c.mean_service = 1.0;
  c.service_cv = 1.0;  // ~M/M/1 when exponential-ish
  c.timeout_rel = 6.0;
  c.queries = 60000;
  c.warmup = 2000;
  c.seed = 11;
  return c;
}

TEST(GGkSimulator, MM1MeanResponseMatchesTheory) {
  // M/M/1: E[T] = 1 / (mu - lambda) = mean_service / (1 - rho).
  // Log-normal with CV 1 is not exactly exponential; allow a loose band.
  GGkConfig c = base_config();
  const GGkResult r = simulate_ggk(c);
  const double expected = 1.0 / (1.0 - 0.7);
  EXPECT_NEAR(r.response_times.mean(), expected, expected * 0.15);
}

TEST(GGkSimulator, ResponseGrowsWithUtilization) {
  GGkConfig lo = base_config();
  lo.utilization = 0.3;
  GGkConfig hi = base_config();
  hi.utilization = 0.9;
  EXPECT_LT(simulate_ggk(lo).response_times.mean(),
            simulate_ggk(hi).response_times.mean());
}

TEST(GGkSimulator, MoreServersReduceWaiting) {
  GGkConfig one = base_config();
  GGkConfig four = base_config();
  four.servers = 4;  // same offered load per server
  EXPECT_LT(simulate_ggk(four).queue_delays.mean(),
            simulate_ggk(one).queue_delays.mean());
}

TEST(GGkSimulator, BoostingReducesResponseTime) {
  GGkConfig never = base_config();
  never.utilization = 0.85;
  GGkConfig boost = never;
  boost.timeout_rel = 1.0;
  boost.effective_allocation = 0.6;
  boost.allocation_ratio = 3.0;  // boost multiplier 1.8
  const GGkResult rn = simulate_ggk(never);
  const GGkResult rb = simulate_ggk(boost);
  EXPECT_LT(rb.response_times.mean(), rn.response_times.mean());
  EXPECT_LT(rb.response_times.percentile(0.95),
            rn.response_times.percentile(0.95));
  EXPECT_GT(rb.boosted_queries, 0u);
  EXPECT_EQ(rn.boosted_queries, 0u);
}

TEST(GGkSimulator, ZeroTimeoutBoostsEverything) {
  GGkConfig c = base_config();
  c.timeout_rel = 0.0;
  c.effective_allocation = 0.5;
  c.allocation_ratio = 3.0;
  const GGkResult r = simulate_ggk(c);
  EXPECT_EQ(r.boosted_queries, r.completed);
}

TEST(GGkSimulator, UselessAllocationRatioIsNoop) {
  GGkConfig a = base_config();
  a.timeout_rel = 0.5;
  a.allocation_ratio = 1.0;  // a' == a: no speedup possible
  GGkConfig b = base_config();
  b.timeout_rel = 6.0;
  EXPECT_NEAR(simulate_ggk(a).response_times.mean(),
              simulate_ggk(b).response_times.mean(), 1e-9);
}

TEST(GGkSimulator, BoostMultiplierClampedAtOne) {
  // EA x ratio < 1 must never slow queries down.
  GGkConfig slow = base_config();
  slow.timeout_rel = 0.5;
  slow.effective_allocation = 0.1;
  slow.allocation_ratio = 2.0;  // raw multiplier 0.2 -> clamped to 1
  GGkConfig never = base_config();
  never.timeout_rel = 6.0;
  EXPECT_NEAR(simulate_ggk(slow).response_times.mean(),
              simulate_ggk(never).response_times.mean(), 1e-9);
}

TEST(GGkSimulator, DeterministicForSeed) {
  const GGkResult a = simulate_ggk(base_config());
  const GGkResult b = simulate_ggk(base_config());
  EXPECT_DOUBLE_EQ(a.response_times.mean(), b.response_times.mean());
}

TEST(GGkSimulator, FeedbackFieldsPopulated) {
  const GGkResult r = simulate_ggk(base_config());
  EXPECT_GT(r.mean_queue_delay, 0.0);
  EXPECT_EQ(r.completed, 58000u);
}

TEST(GGkSimulator, RejectsBadConfig) {
  GGkConfig c = base_config();
  c.utilization = 1.2;
  EXPECT_THROW((void)simulate_ggk(c), ContractViolation);
  c = base_config();
  c.queries = c.warmup;
  EXPECT_THROW((void)simulate_ggk(c), ContractViolation);
}

// Property sweep: response time is monotone in EA (better allocation can
// only help) at a fixed timeout.
class GGkEaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GGkEaSweep, HigherEaNeverHurts) {
  GGkConfig lo = base_config();
  lo.utilization = 0.85;
  lo.timeout_rel = 1.0;
  lo.allocation_ratio = 3.0;
  lo.effective_allocation = GetParam();
  GGkConfig hi = lo;
  hi.effective_allocation = GetParam() + 0.2;
  EXPECT_GE(simulate_ggk(lo).response_times.mean(),
            simulate_ggk(hi).response_times.mean() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(EaLevels, GGkEaSweep,
                         ::testing::Values(0.34, 0.5, 0.6, 0.75));

TEST(GGkSimulator, ClassLevelBoostTrimsTailsAtHighLoad) {
  // §4 semantics: one overdue query boosts the whole class.  At heavy load
  // with a long timeout only a few queries go overdue, yet the class-wide
  // switch during congestion collapses the tail — the signature behaviour
  // a per-query model cannot produce.
  GGkConfig never = base_config();
  never.utilization = 0.93;
  never.servers = 2;
  never.service_cv = 0.3;
  GGkConfig rare = never;
  rare.timeout_rel = 4.0;
  rare.effective_allocation = 0.45;
  rare.allocation_ratio = 3.0;
  const GGkResult rn = simulate_ggk(never);
  const GGkResult rr = simulate_ggk(rare);
  // Few queries boosted...
  EXPECT_LT(static_cast<double>(rr.boosted_queries) /
                static_cast<double>(rr.completed),
            0.35);
  // ...but p95 falls by a large factor.
  EXPECT_LT(rr.response_times.percentile(0.95),
            0.7 * rn.response_times.percentile(0.95));
}

TEST(GGkSimulator, PerQueryBoostIsWeakerAtHeavyLoad) {
  // Ablation: per-query boosting misses the congestion-triggered class-
  // wide speedup, so at heavy load with a long timeout it predicts much
  // higher response times than class-level §4 semantics.
  GGkConfig cfg = base_config();
  cfg.utilization = 0.93;
  cfg.servers = 2;
  cfg.service_cv = 0.3;
  cfg.timeout_rel = 4.0;
  cfg.effective_allocation = 0.45;
  cfg.allocation_ratio = 3.0;
  GGkConfig per_query = cfg;
  per_query.class_level_boost = false;
  const GGkResult rc = simulate_ggk(cfg);
  const GGkResult rq = simulate_ggk(per_query);
  // Class-level semantics strictly dominate per-query at the mean and
  // even more so in the tail (the class switch fires during congestion).
  EXPECT_GT(rq.response_times.mean(), rc.response_times.mean());
  EXPECT_GT(rq.response_times.percentile(0.95),
            rc.response_times.percentile(0.95));
}

TEST(GGkSimulator, PerQueryBoostStillHelpsVsNever) {
  GGkConfig never = base_config();
  never.utilization = 0.9;
  GGkConfig per_query = never;
  per_query.timeout_rel = 1.0;
  per_query.effective_allocation = 0.6;
  per_query.allocation_ratio = 3.0;
  per_query.class_level_boost = false;
  EXPECT_LT(simulate_ggk(per_query).response_times.mean(),
            simulate_ggk(never).response_times.mean());
}

TEST(GGkSimulator, ResidualPrevalenceSpeedsDefaultPhase) {
  GGkConfig cold = base_config();
  cold.utilization = 0.8;
  cold.timeout_rel = 1.0;
  cold.effective_allocation = 0.5;
  cold.allocation_ratio = 3.0;
  cold.boost_prevalence = 0.0;
  GGkConfig warm = cold;
  warm.boost_prevalence = 0.8;  // fed back from a previous round
  EXPECT_LT(simulate_ggk(warm).response_times.mean(),
            simulate_ggk(cold).response_times.mean());
}

TEST(GGkSimulator, ResidualNeverExceedsBoostedRate) {
  // Even with prevalence 1 and weight 1, default-phase rate is capped by
  // the boosted rate, so always-boost still bounds the best case.
  GGkConfig full = base_config();
  full.utilization = 0.8;
  full.timeout_rel = 2.0;
  full.effective_allocation = 0.5;
  full.allocation_ratio = 3.0;
  full.boost_prevalence = 1.0;
  full.residual_weight = 1.0;
  GGkConfig always = full;
  always.timeout_rel = 0.0;
  always.boost_prevalence = 0.0;
  EXPECT_GE(simulate_ggk(full).response_times.mean(),
            simulate_ggk(always).response_times.mean() * 0.95);
}

// Regression: negative_sojourns was a post-hoc counter papering over a
// suspected event-ordering bug, and advance_to() silently clamped negative
// residual work.  The event clock is provably monotone (every push is
// `now + nonneg` and the heap pops in time order), so sojourns can never be
// negative — the simulator now asserts both invariants inline, and this
// sweep drives the adversarial corners (heavy tail, near-saturation, both
// boost semantics, chaos on and off) to pin them.
TEST(GGkSimulator, NegativeSojournsImpossibleUnderAdversarialSweep) {
  for (const double cv : {0.3, 1.0, 2.5}) {
    for (const double util : {0.5, 0.95}) {
      for (const bool class_level : {true, false}) {
        for (const std::uint64_t seed : {7u, 99u}) {
          GGkConfig c;
          c.utilization = util;
          c.servers = 2;
          c.mean_service = 1.0;
          c.service_cv = cv;
          c.timeout_rel = 0.5;  // aggressive boosting: many reschedules
          c.effective_allocation = 0.6;
          c.allocation_ratio = 3.0;
          c.class_level_boost = class_level;
          c.queries = 12'000;
          c.warmup = 500;
          c.seed = seed;
          const GGkResult r = simulate_ggk(c);
          EXPECT_EQ(r.negative_sojourns, 0u)
              << "cv=" << cv << " util=" << util
              << " class_level=" << class_level << " seed=" << seed;
          EXPECT_GE(r.response_times.min(), 0.0);
        }
      }
    }
  }
}

TEST(GGkSimulator, NegativeSojournsImpossibleWithServiceChaos) {
  // Latency injection inflates demand at arrival — it must never bend the
  // event clock or the sojourn accounting.
  FaultPlan plan;
  plan.seed = 1234;
  plan.add({.point = "ggk.service",
            .action = FaultAction::kLatency,
            .probability = 0.1,
            .latency = 5.0});
  FaultScope scope(plan);

  GGkConfig c;
  c.utilization = 0.9;
  c.servers = 2;
  c.mean_service = 1.0;
  c.service_cv = 2.0;
  c.timeout_rel = 0.5;
  c.effective_allocation = 0.6;
  c.allocation_ratio = 3.0;
  c.queries = 20'000;
  c.warmup = 500;
  c.seed = 3;
  const GGkResult r = simulate_ggk(c);
  EXPECT_GT(r.latency_injections, 0u);
  EXPECT_EQ(r.negative_sojourns, 0u);
  EXPECT_GE(r.response_times.min(), 0.0);
}

}  // namespace
}  // namespace stac::queueing

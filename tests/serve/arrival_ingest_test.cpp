// The ingest ring's contract: FIFO through the single consumer, exact
// drop-not-block accounting when full, and clean MPSC behaviour under
// producer contention (the TSan job runs the stress test).
#include "serve/arrival_ingest.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace stac::serve {
namespace {

QueryEvent arrival(double t, std::uint32_t producer = 0) {
  QueryEvent e;
  e.kind = EventKind::kArrival;
  e.time = t;
  e.producer = producer;
  return e;
}

TEST(ArrivalIngest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ArrivalIngest(5).capacity(), 8u);
  EXPECT_EQ(ArrivalIngest(8).capacity(), 8u);
  EXPECT_EQ(ArrivalIngest(1).capacity(), 2u);
  EXPECT_EQ(ArrivalIngest(1000).capacity(), 1024u);
}

TEST(ArrivalIngest, FifoSingleThread) {
  ArrivalIngest ring(64);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(ring.try_push(arrival(i)));
  std::vector<QueryEvent> out(64);
  const std::size_t n = ring.drain(out);
  ASSERT_EQ(n, 40u);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(out[i].time, static_cast<double>(i));
  EXPECT_EQ(ring.pushed(), 40u);
  EXPECT_EQ(ring.popped(), 40u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(ArrivalIngest, FullRingDropsInsteadOfBlocking) {
  ArrivalIngest ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(arrival(i)));
  EXPECT_FALSE(ring.try_push(arrival(4)));
  EXPECT_FALSE(ring.try_push(arrival(5)));
  EXPECT_EQ(ring.pushed(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);

  // Draining frees the cells; pushes succeed again and FIFO holds.
  std::vector<QueryEvent> out(4);
  EXPECT_EQ(ring.drain(out), 4u);
  EXPECT_TRUE(ring.try_push(arrival(6)));
  EXPECT_EQ(ring.drain(out), 1u);
  EXPECT_EQ(out[0].time, 6.0);
}

TEST(ArrivalIngest, DrainInSmallBatches) {
  ArrivalIngest ring(64);
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(ring.try_push(arrival(i)));
  std::vector<QueryEvent> out(7);
  double expect = 0.0;
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = ring.drain(out);
    if (n == 0) break;
    total += n;
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i].time, expect++);
  }
  EXPECT_EQ(total, 30u);
}

TEST(ArrivalIngest, DrainEmptyReturnsZero) {
  ArrivalIngest ring(8);
  std::vector<QueryEvent> out(8);
  EXPECT_EQ(ring.drain(out), 0u);
}

TEST(ArrivalIngest, MpscStressExactAccountingAndPerProducerOrder) {
  // N producers hammer a deliberately small ring while the consumer drains
  // concurrently: every attempted push is either consumed or counted as a
  // drop, and each producer's surviving events arrive in emission order.
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  ArrivalIngest ring(256);

  std::vector<std::uint64_t> producer_pushed(kProducers, 0);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, &producer_pushed, p] {
      std::uint64_t ok = 0;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // Encode the per-producer sequence number in the timestamp.
        if (ring.try_push(arrival(static_cast<double>(i),
                                  static_cast<std::uint32_t>(p))))
          ++ok;
      }
      producer_pushed[p] = ok;
    });
  }

  std::vector<double> last_seen(kProducers, -1.0);
  std::vector<std::uint64_t> consumed_per(kProducers, 0);
  std::uint64_t consumed = 0;
  std::vector<QueryEvent> out(512);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    for (;;) {
      // Observe quiescence BEFORE draining: every push happens-before the
      // done store, so done-then-empty-drain means empty forever.
      const bool finished = done.load(std::memory_order_acquire);
      const std::size_t n = ring.drain(out);
      for (std::size_t i = 0; i < n; ++i) {
        const QueryEvent& e = out[i];
        ASSERT_LT(e.producer, kProducers);
        // Per-producer FIFO: sequence numbers strictly increase.
        ASSERT_GT(e.time, last_seen[e.producer]);
        last_seen[e.producer] = e.time;
        ++consumed_per[e.producer];
        ++consumed;
      }
      if (finished && n == 0) break;
    }
  });

  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  std::uint64_t pushed_total = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(consumed_per[p], producer_pushed[p]) << "producer " << p;
    pushed_total += producer_pushed[p];
  }
  EXPECT_EQ(consumed, pushed_total);
  EXPECT_EQ(ring.pushed(), pushed_total);
  EXPECT_EQ(ring.popped(), pushed_total);
  EXPECT_EQ(ring.pushed() + ring.dropped(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace stac::serve

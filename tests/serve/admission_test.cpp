// Admission-control contract: no shedding at idle, deterministic
// probabilistic shedding under ring pressure, a guaranteed admit floor,
// per-workload fairness scales, and exact offered == admitted + shed
// accounting under concurrent producers (the TSan job runs the stress
// test).  Shed queries are counted apart from ring drops — the two failure
// modes stay separately observable.
#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "serve/arrival_ingest.hpp"

namespace stac::serve {
namespace {

QueryEvent arrival(double t, std::uint16_t workload = 0) {
  QueryEvent e;
  e.kind = EventKind::kArrival;
  e.time = t;
  e.workload = workload;
  return e;
}

void fill_ring(ArrivalIngest& ring, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_TRUE(ring.try_push(arrival(static_cast<double>(i))));
}

TEST(Admission, AdmitsEverythingAtIdle) {
  ArrivalIngest ring(256);
  AdmissionController admission(ring, 2);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(admission.admit(i % 2));
  EXPECT_EQ(admission.offered(), 1000u);
  EXPECT_EQ(admission.admitted(), 1000u);
  EXPECT_EQ(admission.shed(), 0u);
  EXPECT_EQ(admission.shed_fraction(), 0.0);
}

TEST(Admission, ShedsUnderRingPressureButKeepsAdmitFloor) {
  ArrivalIngest ring(256);
  AdmissionConfig cfg;
  cfg.max_shed = 0.9;
  AdmissionController admission(ring, 2, cfg);
  fill_ring(ring, 250);  // occupancy ~0.98: saturated pressure

  EXPECT_NEAR(admission.shed_probability(0), cfg.max_shed, 1e-12);
  std::uint64_t admitted = 0;
  const int kOffers = 4000;
  for (int i = 0; i < kOffers; ++i)
    if (admission.admit(0)) ++admitted;
  // The admit floor (1 - max_shed = 10%) survives saturation: the
  // estimator keeps seeing a trickle of every workload.
  EXPECT_GT(admitted, kOffers / 20);   // well above zero
  EXPECT_LT(admitted, kOffers / 4);    // but most queries shed
  EXPECT_EQ(admission.offered(), admission.admitted() + admission.shed());
}

TEST(Admission, DecisionsAreDeterministicForAFixedOfferSequence) {
  ArrivalIngest ring(256);
  fill_ring(ring, 200);
  std::vector<bool> first, second;
  for (int run = 0; run < 2; ++run) {
    AdmissionController admission(ring, 2);
    auto& out = run == 0 ? first : second;
    for (int i = 0; i < 500; ++i) out.push_back(admission.admit(i % 2));
  }
  EXPECT_EQ(first, second);
}

TEST(Admission, ShedProbabilityRampsWithOccupancy) {
  ArrivalIngest ring(1024);
  AdmissionConfig cfg;
  cfg.target_occupancy = 0.25;
  cfg.full_occupancy = 0.75;
  AdmissionController admission(ring, 1, cfg);

  EXPECT_EQ(admission.shed_probability(0), 0.0);  // empty ring
  fill_ring(ring, 512);                           // occupancy 0.5: mid-ramp
  const double mid = admission.shed_probability(0);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, cfg.max_shed);
  std::vector<QueryEvent> out(1024);
  (void)ring.drain(out);  // drained: pressure releases immediately
  EXPECT_EQ(admission.shed_probability(0), 0.0);
}

TEST(Admission, EpochLagAddsPressureOnlyPastGrace) {
  ArrivalIngest ring(1024);  // empty: depth contributes nothing
  AdmissionConfig cfg;
  cfg.lag_weight = 0.5;
  cfg.lag_grace = 0.5;
  AdmissionController admission(ring, 1, cfg);

  admission.note_epoch(0.4);  // within grace: a healthy plan
  EXPECT_EQ(admission.shed_probability(0), 0.0);
  admission.note_epoch(1.0);  // consumed the whole budget
  EXPECT_NEAR(admission.shed_probability(0), cfg.lag_weight, 1e-12);
  admission.note_epoch(0.0);  // recovered
  EXPECT_EQ(admission.shed_probability(0), 0.0);
}

TEST(Admission, FairnessScalesShedTowardTheHeavyWorkload) {
  ArrivalIngest ring(256);
  AdmissionController admission(ring, 2);
  // Epoch 1: workload 0 offers 9x what workload 1 offers.
  for (int i = 0; i < 900; ++i) (void)admission.admit(0);
  for (int i = 0; i < 100; ++i) (void)admission.admit(1);
  admission.note_epoch(0.0);

  fill_ring(ring, 250);  // now saturate the depth signal
  const double heavy = admission.shed_probability(0);
  const double light = admission.shed_probability(1);
  // The over-share tenant sheds at the ceiling; the under-share tenant
  // sheds strictly less — one tenant's burst cannot starve the other.
  EXPECT_GT(heavy, light);
  EXPECT_GT(light, 0.0);  // but nobody rides free under pressure
}

TEST(Admission, AllIdleEpochKeepsFairnessScalesAtUnity) {
  // Regression: an epoch in which nothing was offered made the fairness
  // share 0/0.  A NaN scale stored here would flow into every producer's
  // shed coin until the next epoch.  The all-idle rescale must behave
  // exactly like a fresh controller: scale 1.0 for everyone.
  ArrivalIngest ring(256);
  AdmissionController idle_rescaled(ring, 2);
  idle_rescaled.note_epoch(0.0);  // zero offers since construction
  idle_rescaled.note_epoch(0.0);  // and again: repeated idle epochs
  AdmissionController fresh(ring, 2);

  fill_ring(ring, 250);  // saturate the shared depth signal
  for (std::size_t w = 0; w < 2; ++w) {
    const double p = idle_rescaled.shed_probability(w);
    EXPECT_TRUE(std::isfinite(p)) << "workload " << w;
    EXPECT_EQ(p, fresh.shed_probability(w)) << "workload " << w;
  }
}

TEST(Admission, NonFiniteEpochLagIsDroppedNotFolded) {
  ArrivalIngest ring(1024);  // empty ring: lag is the only pressure term
  AdmissionConfig cfg;
  cfg.lag_weight = 0.5;
  cfg.lag_grace = 0.5;
  AdmissionController admission(ring, 2);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {nan, inf, -inf}) {
    admission.note_epoch(bad);
    for (std::size_t w = 0; w < 2; ++w) {
      const double p = admission.shed_probability(w);
      EXPECT_TRUE(std::isfinite(p));
      EXPECT_EQ(p, 0.0);  // a glitched clock never sheds traffic
    }
    for (int i = 0; i < 50; ++i) EXPECT_TRUE(admission.admit(i % 2));
  }
  EXPECT_EQ(admission.shed(), 0u);
}

TEST(Admission, OutOfRangeWorkloadIsAdmittedUngoverned) {
  ArrivalIngest ring(256);
  AdmissionController admission(ring, 2);
  fill_ring(ring, 250);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(admission.admit(7));
  EXPECT_EQ(admission.shed(), 0u);
  EXPECT_EQ(admission.shed_probability(7), 0.0);
}

TEST(Admission, MpscStressExactAccountingUnderConcurrentShedAndPush) {
  // Producers interleave admission decisions with ring pushes against a
  // deliberately tiny ring while the consumer drains: at quiescence, every
  // offer is admitted or shed (never both), every admitted query's push is
  // pushed or dropped, and shed never leaks into the ring's counters.
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  ArrivalIngest ring(128);
  AdmissionController admission(ring, kProducers);

  std::vector<std::uint64_t> local_admitted(kProducers, 0);
  std::vector<std::uint64_t> local_pushed(kProducers, 0);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        if (!admission.admit(p)) continue;
        ++local_admitted[p];
        if (ring.try_push(arrival(static_cast<double>(i),
                                  static_cast<std::uint16_t>(p))))
          ++local_pushed[p];
      }
    });
  }
  std::uint64_t consumed = 0;
  std::vector<QueryEvent> out(256);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    for (;;) {
      const bool finished = done.load(std::memory_order_acquire);
      const std::size_t n = ring.drain(out);
      consumed += n;
      if (finished && n == 0) break;
    }
  });
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  std::uint64_t admitted_total = 0, pushed_total = 0, shed_total = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    admitted_total += local_admitted[p];
    pushed_total += local_pushed[p];
    shed_total += admission.shed_for(p);
    // Per-workload: offers split exactly into admits and sheds.
    EXPECT_EQ(local_admitted[p] + admission.shed_for(p), kPerProducer)
        << "producer " << p;
  }
  // Global admission accounting.
  EXPECT_EQ(admission.offered(), kProducers * kPerProducer);
  EXPECT_EQ(admission.admitted(), admitted_total);
  EXPECT_EQ(admission.shed(), shed_total);
  EXPECT_EQ(admission.offered(), admission.admitted() + admission.shed());
  // Ring accounting: only admitted queries ever reached the ring, and shed
  // is NOT folded into dropped.
  EXPECT_EQ(ring.pushed(), pushed_total);
  EXPECT_EQ(ring.popped(), consumed);
  EXPECT_EQ(ring.popped(), ring.pushed());
  EXPECT_EQ(ring.pushed() + ring.dropped(), admitted_total);
  // Under a 128-slot ring and 4 hammering producers the controller must
  // actually have shed something, or the test proved nothing.
  EXPECT_GT(shed_total, 0u);
}

}  // namespace
}  // namespace stac::serve

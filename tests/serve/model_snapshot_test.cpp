// Hot-swap correctness: readers pin a coherent bundle across concurrent
// publishes (no torn reads), retired bundles are reclaimed only once
// unpinned, and slot exhaustion degrades to the mutex path — not UB.
#include "serve/model_snapshot.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace stac::serve {
namespace {

std::atomic<int> live_payloads{0};

struct Payload {
  explicit Payload(std::uint64_t s) : stamp(s) {
    for (auto& v : body) v = s;
    ++live_payloads;
  }
  ~Payload() { --live_payloads; }
  // A torn read (bundle freed or overwritten mid-use) breaks the
  // all-fields-equal invariant.
  [[nodiscard]] bool coherent() const {
    for (const auto& v : body) {
      if (v != stamp) return false;
    }
    return true;
  }
  std::uint64_t stamp;
  std::array<std::uint64_t, 64> body{};
};

TEST(ModelSnapshot, NullGuardBeforeFirstPublish) {
  ModelSnapshot<Payload> snap;
  EXPECT_EQ(snap.version(), 0u);
  const auto guard = snap.acquire();
  EXPECT_FALSE(guard);
  EXPECT_EQ(guard.get(), nullptr);
}

TEST(ModelSnapshot, PublishThenAcquireSeesLatest) {
  ModelSnapshot<Payload> snap;
  snap.publish(std::make_unique<const Payload>(7));
  EXPECT_EQ(snap.version(), 1u);
  {
    const auto guard = snap.acquire();
    ASSERT_TRUE(guard);
    EXPECT_EQ(guard->stamp, 7u);
  }
  snap.publish(std::make_unique<const Payload>(8));
  EXPECT_EQ(snap.version(), 2u);
  const auto guard = snap.acquire();
  EXPECT_EQ(guard->stamp, 8u);
}

TEST(ModelSnapshot, PinnedBundleOutlivesItsReplacement) {
  const int live_before = live_payloads.load();
  {
    ModelSnapshot<Payload> snap;
    snap.publish(std::make_unique<const Payload>(1));
    auto guard = snap.acquire();  // pin v1

    snap.publish(std::make_unique<const Payload>(2));
    // v1 is retired but must not be reclaimed while the guard lives.
    EXPECT_EQ(snap.retired_count(), 1u);
    EXPECT_TRUE(guard->coherent());
    EXPECT_EQ(guard->stamp, 1u);
    EXPECT_EQ(live_payloads.load(), live_before + 2);

    { const auto drop = std::move(guard); }  // release the pin
    snap.publish(std::make_unique<const Payload>(3));
    // With no reader pinning anything, the publish sweeps both v1 and the
    // just-retired v2 — only v3 stays live.
    EXPECT_EQ(snap.retired_count(), 0u);
    EXPECT_EQ(live_payloads.load(), live_before + 1);
  }
  // Destructor reclaims everything (current + retired).
  EXPECT_EQ(live_payloads.load(), live_before);
}

TEST(ModelSnapshot, SlotExhaustionFallsBackToMutexPath) {
  ModelSnapshot<Payload> snap;
  snap.publish(std::make_unique<const Payload>(42));
  std::vector<ModelSnapshot<Payload>::ReadGuard> guards;
  guards.reserve(ModelSnapshot<Payload>::kSlots + 1);
  for (std::size_t i = 0; i < ModelSnapshot<Payload>::kSlots; ++i)
    guards.push_back(snap.acquire());
  // Slot 65: mutex fallback — still a valid pin, not a crash.
  const auto extra = snap.acquire();
  ASSERT_TRUE(extra);
  EXPECT_EQ(extra->stamp, 42u);
  for (const auto& g : guards) EXPECT_EQ(g->stamp, 42u);
}

TEST(ModelSnapshot, SwapUnderLoadNeverTearsAReader) {
  const int live_before = live_payloads.load();
  {
    ModelSnapshot<Payload> snap;
    snap.publish(std::make_unique<const Payload>(1));

    constexpr int kReaders = 3;
    constexpr std::uint64_t kReadsEach = 3000;
    std::atomic<int> readers_done{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&] {
        std::uint64_t last = 0;
        for (std::uint64_t i = 0; i < kReadsEach; ++i) {
          const auto guard = snap.acquire();
          ASSERT_TRUE(guard);
          ASSERT_TRUE(guard->coherent());
          // Versions are observed monotonically per reader.
          ASSERT_GE(guard->stamp, last);
          last = guard->stamp;
        }
        readers_done.fetch_add(1, std::memory_order_release);
      });
    }

    // Publish continuously until every reader finished its quota, so the
    // swaps genuinely overlap the reads even on a single-core scheduler.
    std::uint64_t published = 1;
    while (readers_done.load(std::memory_order_acquire) < kReaders) {
      snap.publish(std::make_unique<const Payload>(++published));
      if (published % 64 == 0) std::this_thread::yield();
    }
    for (auto& t : readers) t.join();
    EXPECT_GE(published, 2u);
    EXPECT_EQ(snap.version(), published);
  }
  EXPECT_EQ(live_payloads.load(), live_before);  // nothing leaked
}

}  // namespace
}  // namespace stac::serve

// The estimator must reproduce StreamingStats over the retained window
// exactly, evict by span, expose the utilization coordinate the models
// were trained on, and react faster through its EWMA than its window.
#include "serve/condition_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace stac::serve {
namespace {

QueryEvent arrival(std::uint16_t w, double t) {
  QueryEvent e;
  e.kind = EventKind::kArrival;
  e.workload = w;
  e.time = t;
  return e;
}

QueryEvent completion(std::uint16_t w, double t, double queue_delay,
                      double service, bool boosted = false) {
  QueryEvent e;
  e.kind = EventKind::kCompletion;
  e.workload = w;
  e.time = t;
  e.queue_delay = queue_delay;
  e.service = service;
  e.boosted = boosted;
  return e;
}

QueryEvent timeout_event(std::uint16_t w, double t) {
  QueryEvent e;
  e.kind = EventKind::kTimeout;
  e.workload = w;
  e.time = t;
  return e;
}

TEST(ConditionEstimator, WindowedMomentsMatchStreamingStats) {
  ConditionEstimator est(1, 2);
  StreamingStats service;
  StreamingStats queue;
  // Deterministic but uneven samples, all inside the window.
  for (int i = 0; i < 50; ++i) {
    const double s = 0.5 + 0.03 * (i % 7);
    const double q = 0.1 * (i % 5);
    est.observe(completion(0, 1.0 + 0.1 * i, q, s, i % 4 == 0));
    service.add(s);
    queue.add(q);
  }
  const WorkloadEstimate e = est.estimate(0, 6.0);
  EXPECT_EQ(e.completions, 50u);
  EXPECT_DOUBLE_EQ(e.mean_service, service.mean());
  EXPECT_DOUBLE_EQ(e.service_cv, service.cv());
  EXPECT_DOUBLE_EQ(e.mean_queue_delay, queue.mean());
  EXPECT_DOUBLE_EQ(e.boost_fraction, 13.0 / 50.0);
}

TEST(ConditionEstimator, SpanEvictionDropsOldEntries) {
  EstimatorConfig cfg;
  cfg.window_span = 10.0;
  ConditionEstimator est(1, 1, cfg);
  for (int t = 0; t < 20; ++t) {
    est.observe(arrival(0, t));
    est.observe(completion(0, t, 0.0, 1.0));
    est.observe(timeout_event(0, t));
  }
  // now = 25: only timestamps in [15, 20) survive.
  const WorkloadEstimate e = est.estimate(0, 25.0);
  EXPECT_EQ(e.arrivals, 5u);
  EXPECT_EQ(e.completions, 5u);
  EXPECT_EQ(e.timeouts, 5u);
  // Far future: everything evicted, estimate degrades to zeros, not UB.
  const WorkloadEstimate late = est.estimate(0, 1000.0);
  EXPECT_EQ(late.completions, 0u);
  EXPECT_FALSE(late.warm);
  EXPECT_EQ(late.arrival_rate, 0.0);
}

TEST(ConditionEstimator, CountCapBoundsCompletionWindow) {
  EstimatorConfig cfg;
  cfg.window_span = 1e9;  // span never evicts in this test
  cfg.window_samples = 32;
  ConditionEstimator est(1, 1, cfg);
  for (int i = 0; i < 500; ++i)
    est.observe(completion(0, 0.001 * i, 0.0, 1.0));
  EXPECT_EQ(est.estimate(0, 1.0).completions, 32u);
}

TEST(ConditionEstimator, ArrivalRateAndUtilizationCoordinate) {
  ConditionEstimator est(1, 2);  // 2 servers
  // Exactly rate 1.6/s: arrivals every 0.625 s over [0, 60).
  for (int i = 0; i * 0.625 < 60.0; ++i) {
    est.observe(arrival(0, i * 0.625));
    est.observe(completion(0, i * 0.625, 0.0, 1.0));  // unit service
  }
  const WorkloadEstimate e = est.estimate(0, 60.0);
  // Window span 30: arrivals in [30, 60), front exactly at 30.0.
  EXPECT_NEAR(e.arrival_rate, 1.6, 1e-12);
  EXPECT_DOUBLE_EQ(e.mean_service, 1.0);
  // util = rate x service / servers — Table 2's load axis.
  EXPECT_NEAR(e.utilization, 0.8, 1e-12);
  EXPECT_TRUE(e.warm);
}

TEST(ConditionEstimator, EwmaTracksAStepFasterThanTheWindow) {
  EstimatorConfig cfg;
  cfg.half_life = 1.0;
  cfg.window_span = 100.0;
  ConditionEstimator est(1, 1, cfg);
  for (int i = 0; i < 50; ++i)
    est.observe(completion(0, 0.5 * i, 0.2, 1.0));
  // Step: queueing delay jumps 0.2 -> 2.0 for a few events.
  for (int i = 0; i < 6; ++i)
    est.observe(completion(0, 25.0 + 0.5 * i, 2.0, 1.0));
  const WorkloadEstimate e = est.estimate(0, 28.0);
  // The window still averages mostly old samples; the EWMA has crossed
  // most of the step already.
  EXPECT_LT(e.mean_queue_delay, 0.6);
  EXPECT_GT(e.inst_queue_delay, 1.5);
}

TEST(ConditionEstimator, OutOfRangeWorkloadCountedNotUb) {
  ConditionEstimator est(2, 1);
  est.observe(completion(7, 1.0, 0.0, 1.0));
  est.observe(arrival(2, 1.0));
  EXPECT_EQ(est.ignored_events(), 2u);
  EXPECT_EQ(est.total_events(), 2u);
  EXPECT_EQ(est.estimate(0, 2.0).completions, 0u);
  EXPECT_THROW((void)est.estimate(5, 2.0), ContractViolation);
}

TEST(ConditionEstimator, WarmRequiresMinCompletions) {
  EstimatorConfig cfg;
  cfg.min_completions = 3;
  ConditionEstimator est(1, 1, cfg);
  est.observe(completion(0, 1.0, 0.0, 1.0));
  est.observe(completion(0, 1.1, 0.0, 1.0));
  EXPECT_FALSE(est.estimate(0, 2.0).warm);
  est.observe(completion(0, 1.2, 0.0, 1.0));
  EXPECT_TRUE(est.estimate(0, 2.0).warm);
}

}  // namespace
}  // namespace stac::serve

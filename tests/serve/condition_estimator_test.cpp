// The estimator must reproduce StreamingStats over the retained window
// exactly, evict by span, expose the utilization coordinate the models
// were trained on, and react faster through its EWMA than its window.
#include "serve/condition_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace stac::serve {
namespace {

QueryEvent arrival(std::uint16_t w, double t) {
  QueryEvent e;
  e.kind = EventKind::kArrival;
  e.workload = w;
  e.time = t;
  return e;
}

QueryEvent completion(std::uint16_t w, double t, double queue_delay,
                      double service, bool boosted = false) {
  QueryEvent e;
  e.kind = EventKind::kCompletion;
  e.workload = w;
  e.time = t;
  e.queue_delay = queue_delay;
  e.service = service;
  e.boosted = boosted;
  return e;
}

QueryEvent timeout_event(std::uint16_t w, double t) {
  QueryEvent e;
  e.kind = EventKind::kTimeout;
  e.workload = w;
  e.time = t;
  return e;
}

TEST(ConditionEstimator, WindowedMomentsMatchStreamingStats) {
  ConditionEstimator est(1, 2);
  StreamingStats service;
  StreamingStats queue;
  // Deterministic but uneven samples, all inside the window.
  for (int i = 0; i < 50; ++i) {
    const double s = 0.5 + 0.03 * (i % 7);
    const double q = 0.1 * (i % 5);
    est.observe(completion(0, 1.0 + 0.1 * i, q, s, i % 4 == 0));
    service.add(s);
    queue.add(q);
  }
  const WorkloadEstimate e = est.estimate(0, 6.0);
  EXPECT_EQ(e.completions, 50u);
  EXPECT_DOUBLE_EQ(e.mean_service, service.mean());
  EXPECT_DOUBLE_EQ(e.service_cv, service.cv());
  EXPECT_DOUBLE_EQ(e.mean_queue_delay, queue.mean());
  EXPECT_DOUBLE_EQ(e.boost_fraction, 13.0 / 50.0);
}

TEST(ConditionEstimator, SpanEvictionDropsOldEntries) {
  EstimatorConfig cfg;
  cfg.window_span = 10.0;
  ConditionEstimator est(1, 1, cfg);
  for (int t = 0; t < 20; ++t) {
    est.observe(arrival(0, t));
    est.observe(completion(0, t, 0.0, 1.0));
    est.observe(timeout_event(0, t));
  }
  // now = 25: only timestamps in [15, 20) survive.
  const WorkloadEstimate e = est.estimate(0, 25.0);
  EXPECT_EQ(e.arrivals, 5u);
  EXPECT_EQ(e.completions, 5u);
  EXPECT_EQ(e.timeouts, 5u);
  // Far future: everything evicted, estimate degrades to zeros, not UB.
  const WorkloadEstimate late = est.estimate(0, 1000.0);
  EXPECT_EQ(late.completions, 0u);
  EXPECT_FALSE(late.warm);
  EXPECT_EQ(late.arrival_rate, 0.0);
}

TEST(ConditionEstimator, CountCapBoundsCompletionWindow) {
  EstimatorConfig cfg;
  cfg.window_span = 1e9;  // span never evicts in this test
  cfg.window_samples = 32;
  ConditionEstimator est(1, 1, cfg);
  for (int i = 0; i < 500; ++i)
    est.observe(completion(0, 0.001 * i, 0.0, 1.0));
  EXPECT_EQ(est.estimate(0, 1.0).completions, 32u);
}

TEST(ConditionEstimator, ArrivalRateAndUtilizationCoordinate) {
  ConditionEstimator est(1, 2);  // 2 servers
  // Exactly rate 1.6/s: arrivals every 0.625 s over [0, 60).
  for (int i = 0; i * 0.625 < 60.0; ++i) {
    est.observe(arrival(0, i * 0.625));
    est.observe(completion(0, i * 0.625, 0.0, 1.0));  // unit service
  }
  const WorkloadEstimate e = est.estimate(0, 60.0);
  // Window span 30: arrivals in [30, 60), front exactly at 30.0.
  EXPECT_NEAR(e.arrival_rate, 1.6, 1e-12);
  EXPECT_DOUBLE_EQ(e.mean_service, 1.0);
  // util = rate x service / servers — Table 2's load axis.
  EXPECT_NEAR(e.utilization, 0.8, 1e-12);
  EXPECT_TRUE(e.warm);
}

TEST(ConditionEstimator, EwmaTracksAStepFasterThanTheWindow) {
  EstimatorConfig cfg;
  cfg.half_life = 1.0;
  cfg.window_span = 100.0;
  ConditionEstimator est(1, 1, cfg);
  for (int i = 0; i < 50; ++i)
    est.observe(completion(0, 0.5 * i, 0.2, 1.0));
  // Step: queueing delay jumps 0.2 -> 2.0 for a few events.
  for (int i = 0; i < 6; ++i)
    est.observe(completion(0, 25.0 + 0.5 * i, 2.0, 1.0));
  const WorkloadEstimate e = est.estimate(0, 28.0);
  // The window still averages mostly old samples; the EWMA has crossed
  // most of the step already.
  EXPECT_LT(e.mean_queue_delay, 0.6);
  EXPECT_GT(e.inst_queue_delay, 1.5);
}

TEST(ConditionEstimator, OutOfRangeWorkloadCountedNotUb) {
  ConditionEstimator est(2, 1);
  est.observe(completion(7, 1.0, 0.0, 1.0));
  est.observe(arrival(2, 1.0));
  EXPECT_EQ(est.ignored_events(), 2u);
  EXPECT_EQ(est.total_events(), 2u);
  EXPECT_EQ(est.estimate(0, 2.0).completions, 0u);
  EXPECT_THROW((void)est.estimate(5, 2.0), ContractViolation);
}

TEST(ConditionEstimator, OutOfOrderTimestampsAreClampedAndCounted) {
  ConditionEstimator est(1, 1);  // default skew_tolerance 0.25
  est.observe(arrival(0, 10.0));
  est.observe(arrival(0, 12.0));
  // A proxy whose clock ran 3 s behind: clamped forward to 12.0 AND
  // counted — that much skew is an operational signal, not noise.
  est.observe(arrival(0, 9.0));
  EXPECT_EQ(est.skew_clamped(), 1u);
  // Modest cross-producer skew (0.1 s < tolerance) is clamped silently.
  est.observe(arrival(0, 11.9));
  EXPECT_EQ(est.skew_clamped(), 1u);
  // The deque stayed monotone, so the window still accounts for all four
  // arrivals and eviction can never strand entries behind a newer head.
  EXPECT_EQ(est.estimate(0, 13.0).arrivals, 4u);
  EXPECT_EQ(est.ignored_events(), 0u);
}

TEST(ConditionEstimator, SkewedCompletionKeepsEstimatesSane) {
  EstimatorConfig cfg;
  cfg.half_life = 1.0;
  ConditionEstimator est(1, 1, cfg);
  for (int i = 0; i < 10; ++i)
    est.observe(completion(0, 10.0 + 0.1 * i, 0.2, 1.0));
  // A completion stamped far in the past (negative dt would otherwise
  // blow the EWMA decay up): clamped to the newest completion time.
  est.observe(completion(0, 2.0, 2.0, 1.0));
  EXPECT_EQ(est.skew_clamped(), 1u);
  const WorkloadEstimate e = est.estimate(0, 11.5);
  EXPECT_TRUE(std::isfinite(e.inst_queue_delay));
  EXPECT_GE(e.inst_queue_delay, 0.2);
  EXPECT_LE(e.inst_queue_delay, 2.0);
  EXPECT_EQ(e.completions, 11u);
  // Timeout deque clamps independently of the completion deque.
  est.observe(timeout_event(0, 11.0));
  est.observe(timeout_event(0, 1.0));
  EXPECT_EQ(est.skew_clamped(), 2u);
  EXPECT_EQ(est.estimate(0, 11.5).timeouts, 2u);
}

TEST(ConditionEstimator, NonFiniteEventFieldsAreIgnoredNotFolded) {
  ConditionEstimator est(1, 1);
  est.observe(completion(0, std::nan(""), 0.2, 1.0));
  est.observe(completion(0, 1.0, std::numeric_limits<double>::infinity(), 1.0));
  est.observe(completion(0, 1.0, 0.2,
                         -std::numeric_limits<double>::infinity()));
  EXPECT_EQ(est.ignored_events(), 3u);
  EXPECT_EQ(est.estimate(0, 2.0).completions, 0u);
}

TEST(ConditionEstimator, SnapshotRestoreRoundTripsEwmaState) {
  ConditionEstimator a(1, 1);
  for (int i = 0; i < 8; ++i) {
    a.observe(arrival(0, 1.0 + 0.5 * i));
    a.observe(completion(0, 1.0 + 0.5 * i, 0.3, 0.9));
  }
  a.observe(timeout_event(0, 5.0));
  const auto state = a.snapshot_workload(0);
  EXPECT_TRUE(state.ewma_queue_seeded);
  EXPECT_EQ(state.completions, 8u);
  EXPECT_EQ(state.arrivals, 8u);
  EXPECT_EQ(state.timeouts, 1u);

  ConditionEstimator b(1, 1);
  b.restore_workload(0, state);
  const auto restored = b.snapshot_workload(0);
  EXPECT_EQ(restored.ewma_queue_delay, state.ewma_queue_delay);
  EXPECT_EQ(restored.ewma_queue_time, state.ewma_queue_time);
  EXPECT_EQ(restored.ewma_service, state.ewma_service);
  EXPECT_EQ(restored.ewma_service_time, state.ewma_service_time);
  EXPECT_EQ(restored.completions, state.completions);
  // Window contents are deliberately NOT restored: the restored estimator
  // reports no windowed completions until live traffic refills it.
  EXPECT_EQ(b.estimate(0, 10.0).completions, 0u);
}

TEST(ConditionEstimator, RestoreWorkloadQuarantinesOutOfRangeSlot) {
  // A checkpoint describing more workloads than the live config (the set
  // changed across the restart) must be refused slot-by-slot: counted,
  // nothing written, no walk off the end, and the valid slots untouched.
  ConditionEstimator est(2, 1);
  for (int i = 0; i < 4; ++i)
    est.observe(completion(0, 1.0 + 0.1 * i, 0.05, 0.4));
  const auto before = est.snapshot_workload(0);

  ConditionEstimator::WorkloadEstimatorState stray;
  stray.ewma_service = 99.0;
  stray.completions = 1000;
  EXPECT_FALSE(est.restore_workload(2, stray));
  EXPECT_FALSE(est.restore_workload(17, stray));
  EXPECT_EQ(est.restore_quarantined(), 2u);

  const auto after = est.snapshot_workload(0);
  EXPECT_EQ(after.ewma_service, before.ewma_service);
  EXPECT_EQ(after.completions, before.completions);
}

TEST(ConditionEstimator, WindowMomentsAndEstimateDescribeTheSameWindow) {
  // The fleet aggregation path (window_moments -> merge_moments) and the
  // standalone path (estimate) must read the same retained window: the
  // moments' counts, rate, and service mean are exactly the estimate's.
  ConditionEstimator est(1, 2);
  for (int i = 0; i < 25; ++i) {
    const double t = 0.4 * i;
    est.observe(arrival(0, t));
    est.observe(completion(0, t + 0.1, 0.02, 0.5 + 0.01 * i, i % 3 == 0));
  }
  est.observe(timeout_event(0, 10.0));

  const double now = 10.2;
  const core::WorkloadMoments m = est.window_moments(0, now);
  const WorkloadEstimate e = est.estimate(0, now);
  EXPECT_EQ(m.completions, e.completions);
  EXPECT_EQ(m.service.count(), e.completions);
  EXPECT_EQ(m.arrival_rate, e.arrival_rate);
  EXPECT_EQ(m.service.mean(), e.mean_service);
  EXPECT_EQ(e.utilization, m.arrival_rate * m.service.mean() / 2.0);
}

TEST(ConditionEstimator, WarmRequiresMinCompletions) {
  EstimatorConfig cfg;
  cfg.min_completions = 3;
  ConditionEstimator est(1, 1, cfg);
  est.observe(completion(0, 1.0, 0.0, 1.0));
  est.observe(completion(0, 1.1, 0.0, 1.0));
  EXPECT_FALSE(est.estimate(0, 2.0).warm);
  est.observe(completion(0, 1.2, 0.0, 1.0));
  EXPECT_TRUE(est.estimate(0, 2.0).warm);
}

}  // namespace
}  // namespace stac::serve

// The background refit pipeline: merge -> warm-start refit -> assemble ->
// RCU publish, with request coalescing, a full-refit cadence backstop,
// clean cancellation on stop(), and survival of fit failures (the
// "model.fit" fault point) via bounded retries + degraded publish.
#include "serve/refit_executor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "core/stac_manager.hpp"
#include "serve/serving_model.hpp"

namespace stac::serve {
namespace {

using core::StacManager;
using core::StacOptions;
using profiler::RuntimeCondition;

StacOptions tiny_options() {
  StacOptions opts;
  opts.profile_budget = 6;
  opts.profiler.target_completions = 250;
  opts.profiler.warmup_completions = 30;
  opts.profiler.max_windows = 1;
  opts.profiler.accesses_per_sample = 600;
  opts.model.deep_forest.mgs.window_sizes = {5};
  opts.model.deep_forest.mgs.estimators = 6;
  opts.model.deep_forest.cascade.levels = 1;
  opts.model.deep_forest.cascade.estimators = 10;
  opts.predictor.sim_queries = 1500;
  opts.explorer.grid = {0.0, 2.0, 6.0};
  return opts;
}

RuntimeCondition probe_condition() {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKnn;
  c.collocated = wl::Benchmark::kBfs;
  c.util_primary = 0.8;
  c.util_collocated = 0.8;
  c.timeout_primary = 1.0;
  c.timeout_collocated = 1.0;
  c.seed = 12;
  return c;
}

RefitExecutorConfig executor_config() {
  RefitExecutorConfig cfg;
  cfg.model = tiny_options().model;
  cfg.predictor = tiny_options().predictor;
  return cfg;
}

/// A delta library whose conditions are distinct from the manager's (the
/// merge dedups on exact condition, so perturb the timeout).
core::ProfileLibrary perturbed_delta(const core::ProfileLibrary& base,
                                     std::size_t n, double epsilon) {
  core::ProfileLibrary delta;
  const auto& profiles = base.profiles();
  for (std::size_t i = 0; i < n && i < profiles.size(); ++i) {
    profiler::Profile p = profiles[i];
    p.condition.timeout_primary += epsilon * static_cast<double>(i + 1);
    delta.add(std::move(p));
  }
  return delta;
}

// Calibration is the expensive part; share one manager across the suite.
class RefitExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mgr_ = new StacManager(tiny_options());
    mgr_->calibrate(wl::Benchmark::kKnn, wl::Benchmark::kBfs);
  }
  static void TearDownTestSuite() {
    delete mgr_;
    mgr_ = nullptr;
  }
  static StacManager* mgr_;
};

StacManager* RefitExecutorTest::mgr_ = nullptr;

TEST_F(RefitExecutorTest, ColdThenWarmPublishesThroughSnapshot) {
  ModelSnapshot<ServingModel> models;
  RefitExecutor ex(mgr_->profiler(), models, mgr_->library(),
                   executor_config());
  EXPECT_FALSE(ex.running());
  EXPECT_EQ(ex.published_version(), 0u);

  // No worker running: request_refit executes inline.  The masters start
  // untrained, so the first refit is cold.
  const std::uint64_t t1 = ex.request_refit(core::ProfileLibrary{});
  EXPECT_TRUE(ex.wait(t1, 5.0));
  EXPECT_EQ(ex.published_version(), 1u);
  {
    const auto guard = models.acquire();
    ASSERT_NE(guard.get(), nullptr);
    EXPECT_EQ(guard->version, 1u);
    EXPECT_TRUE(guard->primary.trained());
    EXPECT_EQ(guard->pred().probe_rung(probe_condition()),
              core::DegradationRung::kPrimaryModel);
  }

  // Trained masters + warm_start on: the second refit is warm, and a
  // merged delta grows the authoritative library.
  const std::size_t before = ex.library_size();
  const std::uint64_t t2 =
      ex.request_refit(perturbed_delta(mgr_->library(), 2, 1e-6));
  EXPECT_TRUE(ex.wait(t2, 5.0));
  EXPECT_EQ(ex.published_version(), 2u);
  EXPECT_EQ(ex.library_size(), before + 2);
  const RefitStats st = ex.stats();
  EXPECT_EQ(st.cold, 1u);
  EXPECT_EQ(st.warm, 1u);
  EXPECT_EQ(st.profiles_merged, 2u);
  EXPECT_EQ(models.acquire()->pred().probe_rung(probe_condition()),
            core::DegradationRung::kPrimaryModel);
}

TEST_F(RefitExecutorTest, CadenceForcesPeriodicColdRefit) {
  ModelSnapshot<ServingModel> models;
  RefitExecutorConfig cfg = executor_config();
  cfg.full_refit_every = 2;  // every second refit after a cold one re-fits
  RefitExecutor ex(mgr_->profiler(), models, mgr_->library(), cfg);
  // #1 cold (untrained), #2 warm (streak 0 -> 1), #3 cold (cadence), #4
  // warm, #5 cold ...
  for (int i = 0; i < 5; ++i) (void)ex.refit_now(core::ProfileLibrary{});
  const RefitStats st = ex.stats();
  EXPECT_EQ(st.cold, 3u);
  EXPECT_EQ(st.warm, 2u);
  EXPECT_EQ(ex.published_version(), 5u);
}

TEST_F(RefitExecutorTest, ForceColdOverridesWarmStart) {
  ModelSnapshot<ServingModel> models;
  RefitExecutor ex(mgr_->profiler(), models, mgr_->library(),
                   executor_config());
  (void)ex.refit_now(core::ProfileLibrary{});
  (void)ex.refit_now(core::ProfileLibrary{}, /*force_cold=*/true);
  const RefitStats st = ex.stats();
  EXPECT_EQ(st.cold, 2u);
  EXPECT_EQ(st.warm, 0u);
}

TEST_F(RefitExecutorTest, BackgroundWorkerCoalescesBurstsAndServesAllTickets) {
  ModelSnapshot<ServingModel> models;
  RefitExecutor ex(mgr_->profiler(), models, mgr_->library(),
                   executor_config());
  ex.start();
  EXPECT_TRUE(ex.running());
  // A burst much faster than one fit: at most one job can be in flight and
  // one pending, so most requests fold into the pending job.
  std::vector<std::uint64_t> tickets;
  for (std::size_t i = 0; i < 6; ++i)
    tickets.push_back(
        ex.request_refit(perturbed_delta(mgr_->library(), 1, 1e-7 * (i + 1))));
  for (const std::uint64_t t : tickets) EXPECT_TRUE(ex.wait(t, 60.0));
  const RefitStats st = ex.stats();
  EXPECT_EQ(st.requests, 6u);
  EXPECT_GE(st.coalesced, 1u);
  EXPECT_LT(st.completed, 6u);  // coalescing means fewer refits than asks
  EXPECT_GE(ex.published_version(), 1u);
  EXPECT_EQ(ex.queue_depth(), 0u);
  ex.stop();
  EXPECT_FALSE(ex.running());
}

TEST_F(RefitExecutorTest, StopCancelsPendingJobAndWakesWaiters) {
  ModelSnapshot<ServingModel> models;
  RefitExecutor ex(mgr_->profiler(), models, mgr_->library(),
                   executor_config());
  ex.start();
  const std::uint64_t t1 = ex.request_refit(core::ProfileLibrary{});
  // Wait until the worker has dequeued job 1 so job 2 arms a fresh pending
  // slot instead of coalescing into it.
  while (ex.queue_depth() != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const std::uint64_t t2 = ex.request_refit(core::ProfileLibrary{});
  ex.stop();
  // Job 1 either completed before stop() or ran to completion during join;
  // job 2 was pending and must have been cancelled — unless the worker
  // finished job 1 fast enough to take it first, in which case it
  // completed.  Either way stop() left nothing half-done.
  const RefitStats st = ex.stats();
  EXPECT_EQ(st.completed + st.cancelled, 2u);
  EXPECT_TRUE(ex.wait(t1, 1.0));
  if (st.cancelled == 1u) EXPECT_FALSE(ex.wait(t2, 0.05));
  EXPECT_EQ(ex.queue_depth(), 0u);
  // Restart after stop works (idempotent lifecycle).
  ex.start();
  const std::uint64_t t3 = ex.request_refit(core::ProfileLibrary{});
  EXPECT_TRUE(ex.wait(t3, 60.0));
  ex.stop();
}

TEST_F(RefitExecutorTest, TransientFitFailureIsRetriedInJob) {
  ModelSnapshot<ServingModel> models;
  RefitExecutor ex(mgr_->profiler(), models, mgr_->library(),
                   executor_config());
  // First hit of "model.fit" (the primary's first attempt) throws; the
  // in-job retry and the fallback fit then succeed.
  FaultPlan plan;
  plan.add({.point = "model.fit",
            .action = FaultAction::kThrow,
            .probability = 1.0,
            .from_hit = 1,
            .until_hit = 2});
  FaultScope scope(plan);
  const std::uint64_t t = ex.request_refit(core::ProfileLibrary{});
  scope.disarm();
  EXPECT_TRUE(ex.wait(t, 5.0));
  const RefitStats st = ex.stats();
  EXPECT_EQ(st.fit_failures, 1u);
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.degraded_publishes, 0u);
  const auto guard = models.acquire();
  EXPECT_TRUE(guard->primary.trained());
  EXPECT_EQ(guard->pred().probe_rung(probe_condition()),
            core::DegradationRung::kPrimaryModel);
}

TEST_F(RefitExecutorTest, PersistentFitFailurePublishesDegradedThenRecovers) {
  ModelSnapshot<ServingModel> models;
  RefitExecutor ex(mgr_->profiler(), models, mgr_->library(),
                   executor_config());
  {
    FaultPlan plan;
    plan.add({.point = "model.fit",
              .action = FaultAction::kThrow,
              .probability = 1.0});
    FaultScope scope(plan);
    const std::uint64_t t = ex.request_refit(core::ProfileLibrary{});
    EXPECT_TRUE(ex.wait(t, 5.0));
  }
  RefitStats st = ex.stats();
  EXPECT_EQ(st.degraded_publishes, 1u);
  EXPECT_EQ(st.fit_failures, 2u);  // initial attempt + one retry
  {
    // The degraded bundle still serves: the ladder answers from a lower
    // rung instead of the (untrained) primary.
    const auto guard = models.acquire();
    ASSERT_NE(guard.get(), nullptr);
    EXPECT_FALSE(guard->primary.trained());
    EXPECT_GT(guard->pred().probe_rung(probe_condition()),
              core::DegradationRung::kPrimaryModel);
    const auto pred = guard->pred().predict(probe_condition());
    EXPECT_GT(pred.mean_rt, 0.0);
  }
  // Fault gone: the next refit (cold — the master is untrained again)
  // restores the primary rung.
  const std::uint64_t t2 = ex.request_refit(core::ProfileLibrary{});
  EXPECT_TRUE(ex.wait(t2, 5.0));
  st = ex.stats();
  EXPECT_EQ(st.cold, 2u);
  EXPECT_EQ(models.acquire()->pred().probe_rung(probe_condition()),
            core::DegradationRung::kPrimaryModel);
}

TEST_F(RefitExecutorTest, EmptyLibraryRefitIsAContractViolation) {
  ModelSnapshot<ServingModel> models;
  RefitExecutor ex(mgr_->profiler(), models, core::ProfileLibrary{},
                   executor_config());
  EXPECT_THROW((void)ex.refit_now(core::ProfileLibrary{}), ContractViolation);
}

}  // namespace
}  // namespace stac::serve

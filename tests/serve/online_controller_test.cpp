// The closed loop end to end: on stationary traffic the online controller
// must re-derive exactly the offline recommendation (the online == offline
// identity), hold last-known-good timeouts when the model degrades past
// the planning rung, mirror grants into the CAT lease/watchdog path, and
// survive model hot-swaps under load without losing a single event.
#include "serve/online_controller.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "serve/checkpoint.hpp"
#include "serve/traffic_replay.hpp"

namespace stac::serve {
namespace {

using core::StacManager;
using core::StacOptions;
using profiler::RuntimeCondition;

StacOptions tiny_options() {
  StacOptions opts;
  opts.profile_budget = 6;
  opts.profiler.target_completions = 250;
  opts.profiler.warmup_completions = 30;
  opts.profiler.max_windows = 1;
  opts.profiler.accesses_per_sample = 600;
  opts.model.deep_forest.mgs.window_sizes = {5};
  opts.model.deep_forest.mgs.estimators = 6;
  opts.model.deep_forest.cascade.levels = 1;
  opts.model.deep_forest.cascade.estimators = 10;
  opts.predictor.sim_queries = 1500;
  opts.explorer.grid = {0.0, 2.0, 6.0};
  return opts;
}

RuntimeCondition base_condition() {
  RuntimeCondition c;
  c.primary = wl::Benchmark::kKnn;
  c.collocated = wl::Benchmark::kBfs;
  c.util_primary = 0.8;
  c.util_collocated = 0.8;
  c.timeout_primary = 1.0;
  c.timeout_collocated = 1.0;
  c.seed = 12;
  return c;
}

ControllerConfig controller_config() {
  ControllerConfig cfg;
  cfg.base_condition = base_condition();
  cfg.explorer = tiny_options().explorer;
  cfg.servers = 2;
  return cfg;
}

cachesim::HierarchyConfig hw_cfg() {
  cachesim::HierarchyConfig c;
  c.l1d = {8 * 1024, 8, 64, 4};
  c.l1i = {8 * 1024, 8, 64, 4};
  c.l2 = {64 * 1024, 16, 64, 12};
  c.llc = {512 * 1024, 8, 64, 40};
  return c;
}

QueryEvent make_event(EventKind kind, std::uint16_t w, double t,
                      double service = 1.0, bool boosted = false) {
  QueryEvent e;
  e.kind = kind;
  e.workload = w;
  e.time = t;
  e.service = service;
  e.queue_delay = kind == EventKind::kCompletion ? 0.1 : 0.0;
  e.boosted = boosted;
  return e;
}

/// Deterministic stationary traffic at utilization 0.8 for both workloads:
/// arrival rate 1.6/s against 2 servers of unit mean service.
void feed_stationary(ArrivalIngest& ring, double t0, double t1) {
  constexpr double kGap = 0.625;  // 1.6 arrivals/s
  for (std::uint16_t w = 0; w < 2; ++w) {
    for (double t = t0; t < t1; t += kGap) {
      ASSERT_TRUE(ring.try_push(make_event(EventKind::kArrival, w, t)));
      ASSERT_TRUE(ring.try_push(make_event(EventKind::kCompletion, w, t)));
    }
  }
}

// Calibration is the expensive part; share one manager across the suite.
class OnlineControllerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mgr_ = new StacManager(tiny_options());
    mgr_->calibrate(wl::Benchmark::kKnn, wl::Benchmark::kBfs);
  }
  static void TearDownTestSuite() {
    delete mgr_;
    mgr_ = nullptr;
  }

  static StacManager* mgr_;
};

StacManager* OnlineControllerTest::mgr_ = nullptr;

TEST_F(OnlineControllerTest, ColdEpochHoldsInitialTimeouts) {
  ArrivalIngest ring(1024);
  ModelSnapshot<ServingModel> snap;  // nothing published: must not be touched
  OnlineController ctrl(ring, snap, controller_config());
  const EpochReport r = ctrl.run_epoch(1.0);
  EXPECT_FALSE(r.warm);
  EXPECT_FALSE(r.replanned);
  EXPECT_FALSE(r.stale_hold);
  EXPECT_EQ(r.events_drained, 0u);
  EXPECT_DOUBLE_EQ(r.timeout_primary, 1.0);
  EXPECT_DOUBLE_EQ(r.timeout_collocated, 1.0);
  EXPECT_DOUBLE_EQ(ctrl.timeout(0), 1.0);
  EXPECT_DOUBLE_EQ(ctrl.timeout(1), 1.0);
}

TEST_F(OnlineControllerTest, StationaryTrafficMatchesOfflineRecommend) {
  ArrivalIngest ring(1 << 12);
  ModelSnapshot<ServingModel> snap(
      build_serving_model(*mgr_, tiny_options(), 1));
  OnlineController ctrl(ring, snap, controller_config());

  feed_stationary(ring, 0.0, 60.0);
  const EpochReport r = ctrl.run_epoch(60.0);
  ASSERT_TRUE(r.warm);
  ASSERT_TRUE(r.replanned);
  EXPECT_FALSE(r.stale_hold);
  EXPECT_EQ(r.probe_rung, core::DegradationRung::kPrimaryModel);
  EXPECT_NEAR(r.planned_condition.util_primary, 0.8, 0.051);
  EXPECT_NEAR(r.planned_condition.util_collocated, 0.8, 0.051);

  // The identity: offline recommend() on the very condition the controller
  // planned for selects the very same timeout vector (deterministic
  // training makes the serving bundle predict identically to the manager).
  const core::PolicyExploration offline =
      mgr_->recommend(r.planned_condition);
  EXPECT_EQ(r.timeout_primary, offline.selection.timeout_primary);
  EXPECT_EQ(r.timeout_collocated, offline.selection.timeout_collocated);
  EXPECT_EQ(ctrl.timeout(0), offline.selection.timeout_primary);
  EXPECT_EQ(ctrl.timeout(1), offline.selection.timeout_collocated);

  // Still stationary an epoch later: same condition, same selection.
  feed_stationary(ring, 60.0, 120.0);
  const EpochReport r2 = ctrl.run_epoch(120.0);
  ASSERT_TRUE(r2.replanned);
  EXPECT_EQ(r2.planned_condition.util_primary,
            r.planned_condition.util_primary);
  EXPECT_EQ(r2.timeout_primary, r.timeout_primary);
  EXPECT_EQ(r2.timeout_collocated, r.timeout_collocated);
  EXPECT_EQ(ctrl.totals().replans, 2u);
}

TEST_F(OnlineControllerTest, IncrementalPlanningReusesStationaryEpochs) {
  ArrivalIngest ring(1 << 12);
  ModelSnapshot<ServingModel> snap(
      build_serving_model(*mgr_, tiny_options(), 1));
  ControllerConfig cfg = controller_config();  // incremental = true default
  const std::size_t cells = cfg.explorer.grid.size() * cfg.explorer.grid.size();
  OnlineController ctrl(ring, snap, cfg);

  // Epoch 1: cold memo, full sweep.
  feed_stationary(ring, 0.0, 60.0);
  const EpochReport first = ctrl.run_epoch(60.0);
  ASSERT_TRUE(first.replanned);
  EXPECT_EQ(first.cells_simulated, cells);
  EXPECT_EQ(first.cells_reused, 0u);

  // Epoch 2: same quantized condition, same model version — the memo
  // answers the whole grid and the selection is unchanged.
  feed_stationary(ring, 60.0, 120.0);
  const EpochReport second = ctrl.run_epoch(120.0);
  ASSERT_TRUE(second.replanned);
  EXPECT_EQ(second.cells_simulated, 0u);
  EXPECT_EQ(second.cells_reused, cells);
  EXPECT_EQ(second.timeout_primary, first.timeout_primary);
  EXPECT_EQ(second.timeout_collocated, first.timeout_collocated);

  // Model hot-swap: the version is the memo's generation stamp, so the
  // next epoch re-simulates everything rather than planning on stale
  // predictions.
  snap.publish(build_serving_model(*mgr_, tiny_options(), 2));
  feed_stationary(ring, 120.0, 180.0);
  const EpochReport swapped = ctrl.run_epoch(180.0);
  ASSERT_TRUE(swapped.replanned);
  EXPECT_EQ(swapped.model_version, 2u);
  EXPECT_EQ(swapped.cells_simulated, cells);
  EXPECT_EQ(swapped.cells_reused, 0u);
  // Identical training data: the refit model selects the same vector.
  EXPECT_EQ(swapped.timeout_primary, first.timeout_primary);
}

TEST_F(OnlineControllerTest, ProbeTtlBoundsChaosDetectionLatency) {
  ArrivalIngest ring(1 << 12);
  ModelSnapshot<ServingModel> snap(
      build_serving_model(*mgr_, tiny_options(), 1));
  ControllerConfig cfg = controller_config();
  cfg.max_planning_rung = core::DegradationRung::kLinearFallback;
  cfg.probe_ttl_epochs = 3;  // one probe answers at most 3 epochs
  OnlineController ctrl(ring, snap, cfg);

  feed_stationary(ring, 0.0, 60.0);
  ASSERT_TRUE(ctrl.run_epoch(60.0).replanned);

  // EA predictions now fault.  Epochs 2-3 ride the memoed healthy rung
  // (stationary condition, same bundle, TTL not yet expired); epoch 4's
  // fresh probe sees the failure and holds.
  FaultPlan plan;
  plan.add({.point = "model.predict",
            .action = FaultAction::kThrow,
            .probability = 1.0});
  FaultScope scope(plan);
  for (const double t1 : {120.0, 180.0}) {
    feed_stationary(ring, t1 - 60.0, t1);
    const EpochReport r = ctrl.run_epoch(t1);
    EXPECT_TRUE(r.replanned);
    EXPECT_FALSE(r.stale_hold);
  }
  feed_stationary(ring, 180.0, 240.0);
  const EpochReport detected = ctrl.run_epoch(240.0);
  EXPECT_TRUE(detected.stale_hold);
  EXPECT_FALSE(detected.replanned);
  EXPECT_GT(detected.probe_rung, cfg.max_planning_rung);
}

TEST_F(OnlineControllerTest, DegradedModelHoldsLastKnownGoodVector) {
  ArrivalIngest ring(1 << 12);
  ModelSnapshot<ServingModel> snap(
      build_serving_model(*mgr_, tiny_options(), 1));
  ControllerConfig cfg = controller_config();
  // Only model rungs are acceptable for planning in this test.
  cfg.max_planning_rung = core::DegradationRung::kLinearFallback;
  OnlineController ctrl(ring, snap, cfg);

  // Epoch 1: healthy, replanned — this is the last-known-good vector.
  feed_stationary(ring, 0.0, 60.0);
  const EpochReport healthy = ctrl.run_epoch(60.0);
  ASSERT_TRUE(healthy.replanned);

  // Epoch 2: every EA-model prediction faults, so the ladder answers from
  // the library-neighbour rung — too deep to plan on.  Hold.
  {
    FaultPlan plan;
    plan.add({.point = "model.predict",
              .action = FaultAction::kThrow,
              .probability = 1.0});
    FaultScope scope(plan);
    feed_stationary(ring, 60.0, 120.0);
    const EpochReport degraded = ctrl.run_epoch(120.0);
    ASSERT_TRUE(degraded.warm);
    EXPECT_TRUE(degraded.stale_hold);
    EXPECT_FALSE(degraded.replanned);
    EXPECT_GT(degraded.probe_rung, cfg.max_planning_rung);
    EXPECT_EQ(degraded.timeout_primary, healthy.timeout_primary);
    EXPECT_EQ(degraded.timeout_collocated, healthy.timeout_collocated);
  }

  // Epoch 3: chaos gone, planning resumes.
  feed_stationary(ring, 120.0, 180.0);
  const EpochReport recovered = ctrl.run_epoch(180.0);
  EXPECT_TRUE(recovered.replanned);
  EXPECT_EQ(ctrl.totals().stale_holds, 1u);
}

TEST_F(OnlineControllerTest, MirrorsGrantsIntoCatController) {
  cachesim::CacheHierarchy hw(hw_cfg(), 2);
  cat::AllocationPlan plan = cat::make_pair_plan(8, 1, 2);
  cat::CatController cat(hw, plan);

  ArrivalIngest ring(1024);
  ModelSnapshot<ServingModel> snap;
  OnlineController ctrl(ring, snap, controller_config(), &cat);

  // A fired STAP timeout boosts the class...
  ASSERT_TRUE(ring.try_push(make_event(EventKind::kTimeout, 0, 1.0)));
  (void)ctrl.run_epoch(2.0);
  EXPECT_TRUE(cat.is_boosted(0));
  EXPECT_FALSE(cat.is_boosted(1));

  // ...and the boosted completion releases the grant.
  ASSERT_TRUE(
      ring.try_push(make_event(EventKind::kCompletion, 0, 3.0, 1.0, true)));
  (void)ctrl.run_epoch(4.0);
  EXPECT_FALSE(cat.is_boosted(0));
  EXPECT_EQ(cat.switch_count(), 2u);

  // Unboosted completions never touch the refcount.
  ASSERT_TRUE(
      ring.try_push(make_event(EventKind::kCompletion, 1, 5.0, 1.0, false)));
  (void)ctrl.run_epoch(6.0);
  EXPECT_EQ(cat.fault_stats().spurious_unboosts, 0u);
  EXPECT_EQ(ctrl.totals().events_drained, 3u);
}

TEST_F(OnlineControllerTest, WatchdogRevokesLeakedLease) {
  cachesim::CacheHierarchy hw(hw_cfg(), 2);
  cat::AllocationPlan plan = cat::make_pair_plan(8, 1, 2);
  cat::CatResilienceConfig resilience;
  resilience.max_boost_lease = 5.0;
  cat::CatController cat(hw, plan, resilience);

  ArrivalIngest ring(1024);
  ModelSnapshot<ServingModel> snap;
  OnlineController ctrl(ring, snap, controller_config(), &cat);

  // The boost's completion never arrives (leaked grant).
  ASSERT_TRUE(ring.try_push(make_event(EventKind::kTimeout, 1, 1.0)));
  const EpochReport early = ctrl.run_epoch(2.0);
  EXPECT_EQ(early.watchdog_revocations, 0u);
  EXPECT_TRUE(cat.is_boosted(1));

  const EpochReport late = ctrl.run_epoch(20.0);
  EXPECT_EQ(late.watchdog_revocations, 1u);
  EXPECT_FALSE(cat.is_boosted(1));
  EXPECT_EQ(ctrl.totals().watchdog_revocations, 1u);
}

std::string ckpt_dir(const char* leaf) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / leaf;
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST_F(OnlineControllerTest, WarmEpochWithNoModelIsAHoldNotAnError) {
  ArrivalIngest ring(1 << 12);
  ModelSnapshot<ServingModel> snap;  // recovery window: no bundle yet
  OnlineController ctrl(ring, snap, controller_config());
  feed_stationary(ring, 0.0, 60.0);
  const EpochReport r = ctrl.run_epoch(60.0);
  EXPECT_TRUE(r.warm);
  EXPECT_TRUE(r.model_unavailable_hold);
  EXPECT_FALSE(r.replanned);
  EXPECT_DOUBLE_EQ(r.timeout_primary, 1.0);
  EXPECT_DOUBLE_EQ(r.timeout_collocated, 1.0);
  EXPECT_EQ(ctrl.totals().model_unavailable_holds, 1u);
}

TEST_F(OnlineControllerTest, PlanDeadlineMissHoldsLastKnownGoodVector) {
  ArrivalIngest ring(1 << 12);
  ModelSnapshot<ServingModel> snap(
      build_serving_model(*mgr_, tiny_options(), 1));
  ControllerConfig cfg = controller_config();
  cfg.plan_deadline_seconds = 1e-12;  // every sweep overruns this
  OnlineController ctrl(ring, snap, cfg);

  feed_stationary(ring, 0.0, 60.0);
  const EpochReport r = ctrl.run_epoch(60.0);
  ASSERT_TRUE(r.warm);
  // The sweep ran and overran: its selection is discarded, the epoch is
  // counted as a miss, and the pre-epoch vector keeps serving.
  EXPECT_TRUE(r.deadline_miss);
  EXPECT_FALSE(r.replanned);
  EXPECT_DOUBLE_EQ(r.timeout_primary, 1.0);
  EXPECT_DOUBLE_EQ(r.timeout_collocated, 1.0);
  EXPECT_EQ(ctrl.totals().deadline_misses, 1u);
  EXPECT_EQ(ctrl.totals().replans, 0u);
}

TEST_F(OnlineControllerTest, EpochFaultPointCrashesBeforeStateMoves) {
  ArrivalIngest ring(1024);
  ModelSnapshot<ServingModel> snap;
  OnlineController ctrl(ring, snap, controller_config());
  {
    FaultPlan plan;
    plan.add({.point = "serve.controller.epoch",
              .action = FaultAction::kThrow,
              .every_nth = 1,
              .message = "injected controller crash"});
    FaultScope scope(plan);
    EXPECT_THROW((void)ctrl.run_epoch(1.0), InjectedFault);
  }
  // The crash hit before the epoch counter moved: re-run, don't skip.
  EXPECT_EQ(ctrl.totals().epochs, 0u);
  const EpochReport r = ctrl.run_epoch(1.0);
  EXPECT_EQ(r.epoch, 1u);
}

TEST_F(OnlineControllerTest, CheckpointCadenceWritesAndSurvivesWriteFaults) {
  const std::string dir = ckpt_dir("stac_ctrl_ckpt_cadence");
  ArrivalIngest ring(1024);
  ModelSnapshot<ServingModel> snap;
  ControllerConfig cfg = controller_config();
  cfg.checkpoint.directory = dir;
  cfg.checkpoint.every_n_epochs = 1;
  OnlineController ctrl(ring, snap, cfg);

  const EpochReport first = ctrl.run_epoch(1.0);
  EXPECT_TRUE(first.checkpoint_written);
  const CheckpointLoadReport loaded = load_checkpoint(checkpoint_path(dir));
  ASSERT_TRUE(loaded.clean()) << loaded.reason;
  EXPECT_EQ(loaded.checkpoint->epoch, 1u);

  // Storage trouble mid-epoch: the tick completes, the failure is counted,
  // and the epoch-1 checkpoint on disk stays valid.
  {
    FaultPlan plan;
    plan.add({.point = "serve.checkpoint.write",
              .action = FaultAction::kThrow,
              .every_nth = 1});
    FaultScope scope(plan);
    const EpochReport second = ctrl.run_epoch(2.0);
    EXPECT_EQ(second.epoch, 2u);
    EXPECT_FALSE(second.checkpoint_written);
  }
  EXPECT_EQ(ctrl.totals().checkpoint_failures, 1u);
  const CheckpointLoadReport after = load_checkpoint(checkpoint_path(dir));
  ASSERT_TRUE(after.clean()) << after.reason;
  EXPECT_EQ(after.checkpoint->epoch, 1u);
}

TEST_F(OnlineControllerTest, RecoveryMatchesUninterruptedRunBitExactly) {
  const std::string dir = ckpt_dir("stac_ctrl_ckpt_roundtrip");
  auto bundle_for = [&] { return build_serving_model(*mgr_, tiny_options(), 1); };

  // Uninterrupted baseline: two epochs of stationary CRN traffic, with a
  // checkpoint written after epoch 1.
  ArrivalIngest ring_a(1 << 12);
  ModelSnapshot<ServingModel> snap_a(bundle_for());
  ControllerConfig cfg = controller_config();
  cfg.checkpoint.directory = dir;
  cfg.checkpoint.every_n_epochs = 1;
  cfg.checkpoint.library_ref = "stac_manager:test";
  OnlineController a(ring_a, snap_a, cfg);
  feed_stationary(ring_a, 0.0, 60.0);
  const EpochReport a1 = a.run_epoch(60.0);
  ASSERT_TRUE(a1.replanned);
  ASSERT_TRUE(a1.checkpoint_written);
  // Grab the epoch-1 checkpoint before the epoch-2 cadence overwrites it —
  // this is the file a crash between the two ticks would recover from.
  const CheckpointLoadReport loaded = load_checkpoint(checkpoint_path(dir));
  ASSERT_TRUE(loaded.clean()) << loaded.reason;
  feed_stationary(ring_a, 60.0, 120.0);
  const EpochReport a2 = a.run_epoch(120.0);
  ASSERT_TRUE(a2.replanned);

  // "Crash" after epoch 1: a fresh controller process recovers from the
  // epoch-1 checkpoint and replays the same epoch-2 traffic.
  EXPECT_EQ(loaded.checkpoint->epoch, 1u);
  EXPECT_EQ(loaded.checkpoint->library_ref, "stac_manager:test");

  ArrivalIngest ring_b(1 << 12);
  ModelSnapshot<ServingModel> snap_b(bundle_for());
  ControllerConfig cfg_b = controller_config();  // no checkpoint dir: read-only
  OnlineController b(ring_b, snap_b, cfg_b);
  const RecoveryReport rec = b.recover(*loaded.checkpoint, 60.0);
  EXPECT_TRUE(rec.restored);
  EXPECT_FALSE(rec.quarantined);
  EXPECT_EQ(b.totals().recoveries, 1u);
  EXPECT_EQ(b.totals().epochs, 1u);  // epoch counter continues, not restarts

  // The last-known-good vector is live immediately, before any replan.
  const double recovered_primary = b.timeout(0);
  EXPECT_EQ(std::memcmp(&a1.timeout_primary, &recovered_primary,
                        sizeof(double)),
            0);
  EXPECT_DOUBLE_EQ(b.timeout(1), a1.timeout_collocated);

  feed_stationary(ring_b, 60.0, 120.0);
  const EpochReport b2 = b.run_epoch(120.0);
  ASSERT_TRUE(b2.replanned);
  EXPECT_EQ(b2.epoch, 2u);

  // Bit-identical recommended vectors vs the uninterrupted run.
  const double a2p = a2.timeout_primary, b2p = b2.timeout_primary;
  const double a2c = a2.timeout_collocated, b2c = b2.timeout_collocated;
  EXPECT_EQ(std::memcmp(&a2p, &b2p, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a2c, &b2c, sizeof(double)), 0);
  EXPECT_EQ(b2.planned_condition.util_primary,
            a2.planned_condition.util_primary);
  EXPECT_EQ(b2.planned_condition.util_collocated,
            a2.planned_condition.util_collocated);
}

TEST_F(OnlineControllerTest, RecoverQuarantinesMalformedCheckpoints) {
  ArrivalIngest ring(1024);
  ModelSnapshot<ServingModel> snap;
  OnlineController ctrl(ring, snap, controller_config());

  // A checkpoint written before a retrain changed the workload set: the
  // shape no longer matches the live pair.  Quarantined — counted, nothing
  // restored, and the controller keeps serving its initial vector rather
  // than crashing on stale durable state.
  ControllerCheckpoint wrong_shape;
  wrong_shape.workloads.resize(1);
  wrong_shape.workloads[0].timeout = 0.25;
  wrong_shape.workloads[0].arrivals = 777;
  const RecoveryReport shape = ctrl.recover(wrong_shape, 1.0);
  EXPECT_FALSE(shape.restored);
  EXPECT_TRUE(shape.quarantined);
  EXPECT_FALSE(shape.reason.empty());
  EXPECT_DOUBLE_EQ(ctrl.timeout(0), 1.0);  // untouched

  ControllerCheckpoint bad_timeout;
  bad_timeout.workloads.resize(2);
  bad_timeout.workloads[0].timeout = -1.0;
  const RecoveryReport bad = ctrl.recover(bad_timeout, 1.0);
  EXPECT_FALSE(bad.restored);
  EXPECT_TRUE(bad.quarantined);
  EXPECT_DOUBLE_EQ(ctrl.timeout(0), 1.0);

  // Validation runs before mutation: the oversize checkpoint's extra slots
  // never walked off the estimator's end, and nothing was half-applied.
  ControllerCheckpoint oversize;
  oversize.workloads.resize(5);
  for (auto& w : oversize.workloads) w.timeout = 0.5;
  const RecoveryReport over = ctrl.recover(oversize, 1.0);
  EXPECT_TRUE(over.quarantined);
  EXPECT_DOUBLE_EQ(ctrl.timeout(0), 1.0);
  EXPECT_DOUBLE_EQ(ctrl.timeout(1), 1.0);

  EXPECT_EQ(ctrl.totals().recoveries, 0u);
  EXPECT_EQ(ctrl.totals().recovery_quarantines, 3u);
  EXPECT_EQ(ctrl.estimator().restore_quarantined(), 0u);

  // A clean checkpoint still restores after the quarantines.
  ControllerCheckpoint good;
  good.epoch = 7;
  good.workloads.resize(2);
  good.workloads[0].timeout = 2.0;
  good.workloads[1].timeout = 6.0;
  const RecoveryReport ok = ctrl.recover(good, 1.0);
  EXPECT_TRUE(ok.restored);
  EXPECT_DOUBLE_EQ(ctrl.timeout(0), 2.0);
  EXPECT_DOUBLE_EQ(ctrl.timeout(1), 6.0);
  EXPECT_EQ(ctrl.totals().recoveries, 1u);
  EXPECT_EQ(ctrl.totals().epochs, 7u);
}

TEST_F(OnlineControllerTest, HotSwapUnderLoadLosesNoEvents) {
  ArrivalIngest ring(1 << 16);
  ModelSnapshot<ServingModel> snap(
      build_serving_model(*mgr_, tiny_options(), 1));
  ControllerConfig cfg = controller_config();
  cfg.estimator.min_completions = 10;
  OnlineController ctrl(ring, snap, cfg);

  ReplayConfig replay_cfg;
  replay_cfg.workloads = {
      {.mean_service = 0.05, .service_cv = 0.7, .servers = 2,
       .base_util = 0.6},
      {.mean_service = 0.05, .service_cv = 0.7, .servers = 2,
       .base_util = 0.6}};
  replay_cfg.shards_per_workload = 2;  // 4 producer threads
  TrafficReplay replay(ring, &ctrl, replay_cfg);

  // Pre-built bundles so the swap thread only publishes (refits would
  // dominate the test under TSan).
  std::vector<std::unique_ptr<const ServingModel>> bundles;
  for (std::uint64_t v = 2; v <= 4; ++v)
    bundles.push_back(build_serving_model(*mgr_, tiny_options(), v));

  std::thread swapper([&] {
    for (auto& b : bundles) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      snap.publish(std::move(b));
    }
  });

  // ~20 wall-paced simulated seconds per wall second: the run overlaps all
  // three publishes.
  const SoakResult result = replay.run_threaded(ctrl, /*sim_seconds=*/40.0,
                                                /*epoch_interval=*/2.0,
                                                /*wall_pace=*/40.0);
  swapper.join();

  // Zero loss through the swap: every published event was drained.
  EXPECT_EQ(result.traffic.push_failures, 0u);
  EXPECT_EQ(result.ingest_dropped, 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.popped(), ring.pushed());
  EXPECT_EQ(result.controller.events_drained, ring.pushed());
  EXPECT_EQ(result.traffic.arrivals, result.traffic.completions);
  EXPECT_GT(result.traffic.arrivals, 100u);
  EXPECT_EQ(result.epochs, 20u);
  EXPECT_EQ(snap.version(), 4u);
  EXPECT_GE(ctrl.totals().model_swaps_observed, 1u);
  EXPECT_GT(ctrl.totals().replans, 0u);
}

// A manager calibrated with modeled-time EA labels must serve exactly like
// a miss-ratio one: bundle builds, controller warms up and replans.
TEST(OnlineControllerEaMode, ServesFromModeledTimeCalibration) {
  StacOptions opts = tiny_options();
  opts.profiler.ea_mode = profiler::EaMode::kModeledTime;
  StacManager mgr(opts);
  mgr.calibrate(wl::Benchmark::kKnn, wl::Benchmark::kBfs);
  ASSERT_TRUE(mgr.calibrated());

  ArrivalIngest ring(1 << 12);
  ModelSnapshot<ServingModel> snap(build_serving_model(mgr, opts, 1));
  OnlineController ctrl(ring, snap, controller_config());
  feed_stationary(ring, 0.0, 60.0);
  const EpochReport r = ctrl.run_epoch(60.0);
  ASSERT_TRUE(r.warm);
  ASSERT_TRUE(r.replanned);
  const auto& grid = opts.explorer.grid;
  EXPECT_NE(std::find(grid.begin(), grid.end(), r.timeout_primary),
            grid.end());
}

}  // namespace
}  // namespace stac::serve

// Checkpoint durability contract: doubles round-trip bit-exactly, any
// damage (flipped byte, truncation, missing trailer) quarantines instead
// of serving garbage, and a failed write never disturbs the previous
// checkpoint on disk (atomic replacement + write fault point).
#include "serve/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "common/fault_injection.hpp"

namespace stac::serve {
namespace {

namespace fs = std::filesystem;

std::string test_dir() {
  const fs::path dir = fs::temp_directory_path() / "stac_checkpoint_test";
  fs::create_directories(dir);
  return dir.string();
}

ControllerCheckpoint sample_checkpoint() {
  ControllerCheckpoint c;
  c.epoch = 42;
  c.time = 84.0;
  c.condition_seed = 99;
  c.predictor_seed = 2024;
  c.model_version = 7;
  c.library_ref = "profiles/run_0012.stacprof";
  c.library_size = 36;
  c.replans = 17;
  c.stale_holds = 3;
  c.deadline_misses = 1;
  c.workloads.resize(2);
  // Deliberately awkward doubles: round-trip must be exact, not close.
  c.workloads[0] = {.timeout = 0.1 + 0.2,
                    .ewma_queue_delay = 1.0 / 3.0,
                    .ewma_queue_time = 83.99999999999999,
                    .ewma_queue_seeded = true,
                    .ewma_service = 5e-324,  // denormal min
                    .ewma_service_time = 84.0,
                    .ewma_service_seeded = true,
                    .arrivals = 100000,
                    .completions = 99998,
                    .timeouts = 250};
  c.workloads[1] = {.timeout = 6.0,
                    .ewma_queue_delay = 0.0,
                    .ewma_queue_time = 0.0,
                    .ewma_queue_seeded = false,
                    .ewma_service = 0.048999999999999995,
                    .ewma_service_time = 83.5,
                    .ewma_service_seeded = true,
                    .arrivals = 12,
                    .completions = 10,
                    .timeouts = 0};
  return c;
}

std::string read_all(const std::string& path) {
  std::string text;
  EXPECT_TRUE(read_file(path, text));
  return text;
}

TEST(Checkpoint, RoundTripIsBitExact) {
  const std::string path = checkpoint_path(test_dir());
  const ControllerCheckpoint in = sample_checkpoint();
  save_checkpoint(path, in);

  const CheckpointLoadReport report = load_checkpoint(path);
  ASSERT_TRUE(report.clean()) << report.reason;
  EXPECT_FALSE(report.quarantined);
  const ControllerCheckpoint& out = *report.checkpoint;
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.time, in.time);
  EXPECT_EQ(out.condition_seed, in.condition_seed);
  EXPECT_EQ(out.predictor_seed, in.predictor_seed);
  EXPECT_EQ(out.model_version, in.model_version);
  EXPECT_EQ(out.library_ref, in.library_ref);
  EXPECT_EQ(out.library_size, in.library_size);
  EXPECT_EQ(out.replans, in.replans);
  EXPECT_EQ(out.stale_holds, in.stale_holds);
  EXPECT_EQ(out.deadline_misses, in.deadline_misses);
  ASSERT_EQ(out.workloads.size(), in.workloads.size());
  for (std::size_t w = 0; w < in.workloads.size(); ++w) {
    const WorkloadCheckpoint& a = in.workloads[w];
    const WorkloadCheckpoint& b = out.workloads[w];
    // Exact bit equality, including the denormal.
    EXPECT_EQ(std::memcmp(&a.timeout, &b.timeout, sizeof(double)), 0);
    EXPECT_EQ(a.ewma_queue_delay, b.ewma_queue_delay);
    EXPECT_EQ(a.ewma_queue_time, b.ewma_queue_time);
    EXPECT_EQ(a.ewma_queue_seeded, b.ewma_queue_seeded);
    EXPECT_EQ(a.ewma_service, b.ewma_service);
    EXPECT_EQ(a.ewma_service_time, b.ewma_service_time);
    EXPECT_EQ(a.ewma_service_seeded, b.ewma_service_seeded);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.timeouts, b.timeouts);
  }
}

TEST(Checkpoint, MissingFileQuarantinesWithoutThrowing) {
  const CheckpointLoadReport report =
      load_checkpoint(test_dir() + "/does_not_exist.ckpt");
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.quarantined);
  EXPECT_NE(report.reason.find("cannot open"), std::string::npos);
}

TEST(Checkpoint, FlippedByteFailsTheChecksum) {
  const std::string path = checkpoint_path(test_dir());
  save_checkpoint(path, sample_checkpoint());
  std::string text = read_all(path);
  // Corrupt one digit somewhere inside the body (not the trailer).
  const std::size_t pos = text.find("42");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = '9';
  write_file_atomic(path, text);

  const CheckpointLoadReport report = load_checkpoint(path);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.quarantined);
  EXPECT_NE(report.reason.find("checksum"), std::string::npos);
}

TEST(Checkpoint, TruncationQuarantines) {
  const std::string path = checkpoint_path(test_dir());
  save_checkpoint(path, sample_checkpoint());
  const std::string text = read_all(path);
  // A torn tail (e.g. power cut on a non-atomic filesystem) loses the
  // checksum trailer entirely or leaves it dangling mid-line.
  for (const std::size_t keep :
       {text.size() / 2, text.size() - 3, std::size_t{10}}) {
    write_file_atomic(path, text.substr(0, keep));
    const CheckpointLoadReport report = load_checkpoint(path);
    EXPECT_FALSE(report.clean()) << "kept " << keep << " bytes";
    EXPECT_TRUE(report.quarantined);
  }
}

// The writer's checksum, re-derived so the test can forge a *consistent*
// file of the wrong shape (bad magic / future version) and prove the parse
// layer refuses it even when the trailer verifies.
std::string forge(const std::string& body) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : body) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  return body + "checksum " + hex + "\n";
}

TEST(Checkpoint, BadMagicQuarantines) {
  const std::string path = checkpoint_path(test_dir());
  write_file_atomic(path, forge("not-a-ckpt v1\nepoch 1 1.0\n"));
  const CheckpointLoadReport report = load_checkpoint(path);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.quarantined);
  EXPECT_NE(report.reason.find("not a stac checkpoint"), std::string::npos);
}

TEST(Checkpoint, FutureVersionQuarantines) {
  const std::string path = checkpoint_path(test_dir());
  write_file_atomic(path, forge("stac-ckpt v999\nepoch 1 1.0\n"));
  const CheckpointLoadReport report = load_checkpoint(path);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.quarantined);
  EXPECT_NE(report.reason.find("version"), std::string::npos);
}

TEST(Checkpoint, InjectedWriteFaultLeavesOldFileIntact) {
  const std::string path = checkpoint_path(test_dir());
  ControllerCheckpoint first = sample_checkpoint();
  first.epoch = 1;
  save_checkpoint(path, first);
  const std::string before = read_all(path);

  {
    FaultPlan plan;
    plan.seed = 11;
    plan.add({.point = "serve.checkpoint.write",
              .action = FaultAction::kThrow,
              .every_nth = 1});
    FaultScope chaos(std::move(plan));
    ControllerCheckpoint second = sample_checkpoint();
    second.epoch = 2;
    EXPECT_THROW(save_checkpoint(path, second), InjectedFault);
  }

  // The old checkpoint is byte-identical and still loads clean.
  EXPECT_EQ(read_all(path), before);
  const CheckpointLoadReport report = load_checkpoint(path);
  ASSERT_TRUE(report.clean()) << report.reason;
  EXPECT_EQ(report.checkpoint->epoch, 1u);
}

TEST(Checkpoint, InjectedLoadFaultQuarantines) {
  const std::string path = checkpoint_path(test_dir());
  save_checkpoint(path, sample_checkpoint());
  FaultPlan plan;
  plan.seed = 12;
  plan.add({.point = "serve.checkpoint.load",
            .action = FaultAction::kThrow,
            .every_nth = 1});
  FaultScope chaos(std::move(plan));
  const CheckpointLoadReport report = load_checkpoint(path);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.quarantined);
}

TEST(Checkpoint, WhitespaceLibraryRefIsRejectedAtWriteTime) {
  ControllerCheckpoint c = sample_checkpoint();
  c.library_ref = "bad ref with spaces";
  EXPECT_THROW(save_checkpoint(checkpoint_path(test_dir()) + ".ws", c),
               ContractViolation);
}

TEST(AtomicFile, WriteReplacesAtomicallyAndReadsBack) {
  const std::string path = test_dir() + "/atomic_probe.txt";
  write_file_atomic(path, "first");
  EXPECT_EQ(read_all(path), "first");
  write_file_atomic(path, "second, longer than the first");
  EXPECT_EQ(read_all(path), "second, longer than the first");
  // No temp file left behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicFile, ReadMissingFileReturnsFalse) {
  std::string out = "sentinel";
  EXPECT_FALSE(read_file(test_dir() + "/nope.txt", out));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace stac::serve

#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace stac {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
  EXPECT_THROW(m.at(2, 0), ContractViolation);
  EXPECT_THROW(m.at(0, 3), ContractViolation);
}

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix m(2, 2);
  auto row = m.row(1);
  row[0] = 42.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 42.0);
}

TEST(Matrix, ColExtraction) {
  Matrix m(2, 2);
  m(0, 1) = 1.0;
  m(1, 1) = 2.0;
  const auto col = m.col(1);
  EXPECT_EQ(col, (std::vector<double>{1.0, 2.0}));
}

TEST(Matrix, AppendRowGrowsAndValidates) {
  Matrix m;
  m.append_row(std::vector<double>{1.0, 2.0});
  m.append_row(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_THROW(m.append_row(std::vector<double>{1.0}), ContractViolation);
}

TEST(Matrix, Multiply) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double va = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = va++;
  double vb = 7;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = vb++;
  const Matrix p = a.multiply(b);
  EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
  EXPECT_THROW(b.multiply(b), ContractViolation);
}

TEST(Matrix, GramMatchesTransposeMultiply) {
  Matrix a(3, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  a(2, 0) = 5;
  a(2, 1) = 6;
  const Matrix g = a.gram();
  const Matrix expected = a.transpose().multiply(a);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_DOUBLE_EQ(g(r, c), expected(r, c));
}

TEST(Matrix, CholeskySolveKnownSystem) {
  // A = [[4, 2], [2, 3]], b = [8, 7] -> x = [1.25, 1.5]
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  const auto x = a.cholesky_solve(std::vector<double>{8.0, 7.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(1, 1) = 1.0;
  EXPECT_THROW(a.cholesky_solve(std::vector<double>{1.0, 1.0}),
               ContractViolation);
}

TEST(Matrix, CholeskyRidgeStabilizes) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;  // singular
  EXPECT_NO_THROW(a.cholesky_solve(std::vector<double>{1.0, 1.0}, 1e-3));
}

TEST(Matrix, Submatrix) {
  Matrix m(3, 3);
  double v = 0;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  const Matrix s = m.submatrix(1, 1, 2, 2);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 8.0);
  EXPECT_THROW(m.submatrix(2, 2, 2, 2), ContractViolation);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix m(2, 3);
  m(0, 2) = 5.0;
  m(1, 0) = -2.0;
  const Matrix t = m.transpose().transpose();
  EXPECT_DOUBLE_EQ(t(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(t(1, 0), -2.0);
}

}  // namespace
}  // namespace stac

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace stac {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  StreamingStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.exponential(4.0));
  EXPECT_NEAR(st.mean(), 0.25, 0.01);
}

TEST(Rng, NormalMeanAndStddev) {
  Rng rng(17);
  StreamingStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(st.mean(), 3.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalHitsTargetMeanAndCv) {
  Rng rng(19);
  StreamingStats st;
  for (int i = 0; i < 100000; ++i) st.add(rng.lognormal_mean_cv(5.0, 0.5));
  EXPECT_NEAR(st.mean(), 5.0, 0.1);
  EXPECT_NEAR(st.cv(), 0.5, 0.05);
}

TEST(Rng, LognormalZeroCvIsDeterministic) {
  Rng rng(19);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(5.0, 0.0), 5.0);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.bounded_pareto(1.5, 1.0, 100.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(29);
  StreamingStats small, large;
  for (int i = 0; i < 20000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 1.0);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(31);
  const auto idx = rng.sample_indices(50, 20);
  EXPECT_EQ(idx.size(), 20u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 20u);
  for (auto i : idx) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleIndicesFullPermutation) {
  Rng rng(31);
  const auto idx = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(41);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ContractViolationsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.sample_indices(3, 4), ContractViolation);
}

TEST(ZipfSampler, SkewsTowardLowIndices) {
  Rng rng(43);
  ZipfSampler zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(ZipfSampler, AlphaZeroIsUniformish) {
  Rng rng(47);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 40);
}

class RngDistributionSweep : public ::testing::TestWithParam<double> {};

// Property: exponential(lambda) has mean 1/lambda across rates.
TEST_P(RngDistributionSweep, ExponentialMeanInverseRate) {
  const double lambda = GetParam();
  Rng rng(53);
  StreamingStats st;
  for (int i = 0; i < 40000; ++i) st.add(rng.exponential(lambda));
  EXPECT_NEAR(st.mean() * lambda, 1.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Rates, RngDistributionSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 10.0, 100.0));

}  // namespace
}  // namespace stac

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace stac {
namespace {

TEST(StreamingStats, MeanVarianceMinMax) {
  StreamingStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  // Sum of squared deviations is 32: sample variance 32/7, population 32/8.
  EXPECT_DOUBLE_EQ(st.variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(st.population_variance(), 4.0);
  EXPECT_DOUBLE_EQ(st.stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_DOUBLE_EQ(st.cv(), std::sqrt(32.0 / 7.0) / 5.0);
}

// Regression: variance() used to return the biased population estimator
// (m2/n), which understated dispersion — visibly so at the small sample
// counts the stratified sampler and per-rung latency metrics operate on.
TEST(StreamingStats, VarianceIsUnbiasedSampleEstimator) {
  StreamingStats st;
  st.add(1.0);
  st.add(3.0);
  // Two samples, squared deviations sum to 2: sample variance 2/1 = 2,
  // not the population value 2/2 = 1 the old code produced.
  EXPECT_DOUBLE_EQ(st.variance(), 2.0);
  EXPECT_DOUBLE_EQ(st.population_variance(), 1.0);
  EXPECT_DOUBLE_EQ(st.stddev(), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(st.cv(), std::sqrt(2.0) / 2.0);
}

TEST(StreamingStats, EmptyIsSafe) {
  StreamingStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  EXPECT_DOUBLE_EQ(st.cv(), 0.0);
}

// Regression: min()/max() on an empty accumulator used to leak the
// ±infinity fill sentinels; they now report NaN so downstream consumers
// (metrics JSON, merged per-thread stats) can detect "no data".
TEST(StreamingStats, EmptyMinMaxAreNaNNotSentinels) {
  StreamingStats st;
  EXPECT_TRUE(std::isnan(st.min()));
  EXPECT_TRUE(std::isnan(st.max()));
  StreamingStats other;
  other.add(4.0);
  st.merge(other);  // merging into empty must adopt, not mix with ±inf
  EXPECT_DOUBLE_EQ(st.min(), 4.0);
  EXPECT_DOUBLE_EQ(st.max(), 4.0);
}

TEST(StreamingStats, SingleSampleVarianceIsZero) {
  StreamingStats st;
  st.add(7.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  EXPECT_DOUBLE_EQ(st.population_variance(), 0.0);
  EXPECT_DOUBLE_EQ(st.min(), 7.0);
  EXPECT_DOUBLE_EQ(st.max(), 7.0);
}

TEST(StreamingStats, MergeMatchesSinglePass) {
  Rng rng(5);
  StreamingStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleStats, ExactPercentiles) {
  SampleStats st({40.0, 10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(st.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(st.percentile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(st.median(), 25.0);
  EXPECT_DOUBLE_EQ(st.percentile(0.25), 17.5);
  EXPECT_DOUBLE_EQ(st.min(), 10.0);
  EXPECT_DOUBLE_EQ(st.max(), 40.0);
}

TEST(SampleStats, IncrementalAddKeepsSorting) {
  SampleStats st;
  st.add(5.0);
  st.add(1.0);
  EXPECT_DOUBLE_EQ(st.median(), 3.0);
  st.add(9.0);
  EXPECT_DOUBLE_EQ(st.median(), 5.0);
}

TEST(SampleStats, PercentileOfEmptyThrows) {
  SampleStats st;
  EXPECT_THROW((void)st.percentile(0.5), ContractViolation);
  EXPECT_THROW((void)st.percentile(-0.1), ContractViolation);
}

// Regression: callers that can legitimately see zero samples (testbed runs
// where every query faulted) need a non-throwing percentile.
TEST(SampleStats, PercentileOrFallsBackOnEmpty) {
  SampleStats st;
  EXPECT_TRUE(std::isnan(
      st.percentile_or(0.95, std::numeric_limits<double>::quiet_NaN())));
  EXPECT_DOUBLE_EQ(st.percentile_or(0.5, -1.0), -1.0);
  st.add(3.0);
  EXPECT_DOUBLE_EQ(st.percentile_or(0.5, -1.0), 3.0);
}

TEST(SampleStats, MeanStddev) {
  SampleStats st({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(st.mean(), 2.5);
  EXPECT_NEAR(st.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(3.0);   // bin 1
  h.add(-5.0);  // clamps to bin 0
  h.add(99.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 0.75);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(4), 1.0);
}

TEST(ErrorMetrics, AbsolutePercentError) {
  EXPECT_DOUBLE_EQ(absolute_percent_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(absolute_percent_error(90.0, 100.0), 0.1);
  EXPECT_THROW((void)absolute_percent_error(1.0, 0.0), ContractViolation);
}

TEST(ErrorMetrics, VectorHelpers) {
  const std::vector<double> pred{1.0, 2.0, 4.0};
  const std::vector<double> actual{1.0, 4.0, 2.0};
  const auto apes = absolute_percent_errors(pred, actual);
  ASSERT_EQ(apes.size(), 3u);
  EXPECT_DOUBLE_EQ(apes[0], 0.0);
  EXPECT_DOUBLE_EQ(apes[1], 0.5);
  EXPECT_DOUBLE_EQ(apes[2], 1.0);
  EXPECT_DOUBLE_EQ(mean_absolute_error(pred, actual), 4.0 / 3.0);
  EXPECT_NEAR(rmse(pred, actual), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(ErrorMetrics, RSquaredPerfectAndMeanPredictor) {
  const std::vector<double> actual{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r_squared(actual, actual), 1.0);
  const std::vector<double> mean_pred{2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r_squared(mean_pred, actual), 0.0, 1e-12);
}

TEST(ErrorMetrics, PearsonSignAndMagnitude) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

// Property sweep: percentile interpolation is monotone in q.
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotone, MonotoneInQ) {
  Rng rng(GetParam());
  SampleStats st;
  for (int i = 0; i < 500; ++i) st.add(rng.normal(0.0, 1.0));
  double prev = st.percentile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = st.percentile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace stac

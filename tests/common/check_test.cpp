#include "common/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace stac {
namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(STAC_REQUIRE(1 + 1 == 2));
  EXPECT_NO_THROW(STAC_REQUIRE_MSG(true, "never rendered"));
  EXPECT_NO_THROW(STAC_ENSURE(true));
}

TEST(Check, RequireThrowsContractViolation) {
  EXPECT_THROW(STAC_REQUIRE(false), ContractViolation);
  // ContractViolation is a logic_error — resilience code relies on this to
  // tell programming bugs (never retried) from environment failures.
  EXPECT_THROW(STAC_REQUIRE(false), std::logic_error);
}

TEST(Check, RequireMessageCarriesExpressionAndLocation) {
  try {
    STAC_REQUIRE(2 < 1);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
  }
}

TEST(Check, RequireMsgStreamsArbitraryValues) {
  const std::size_t w = 7;
  try {
    STAC_REQUIRE_MSG(w < 2, "workload " << w << " out of range (have " << 2
                                        << ")");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("workload 7 out of range (have 2)"),
              std::string::npos)
        << what;
  }
}

TEST(Check, EnsureReportsPostconditionKind) {
  try {
    STAC_ENSURE(false);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("postcondition"), std::string::npos) << what;
    EXPECT_EQ(what.find("precondition"), std::string::npos) << what;
  }
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return true;
  };
  STAC_REQUIRE(probe());
  EXPECT_EQ(evaluations, 1);
  STAC_ENSURE(probe());
  EXPECT_EQ(evaluations, 2);
}

}  // namespace
}  // namespace stac

#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace stac {
namespace {

TEST(Table, PrintsAlignedHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, NumericRowFormatting) {
  Table t({"label", "x", "y"});
  t.add_row_numeric("row", {1.23456, 2.0}, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_NE(os.str().find("2.00"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"k", "v"});
  t.add_row({"with,comma", "plain"});
  const std::string path = "/tmp/stac_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "k,v");
  EXPECT_EQ(row, "\"with,comma\",plain");
  std::remove(path.c_str());
}

TEST(Table, NumAndPctHelpers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.123), "12.3%");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 6");
  EXPECT_NE(os.str().find("== Figure 6 =="), std::string::npos);
}

}  // namespace
}  // namespace stac

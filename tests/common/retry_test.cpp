#include "common/retry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace stac {
namespace {

TEST(Retry, FirstAttemptSuccessCostsNothing) {
  Rng rng(1);
  RetryStats stats;
  const int v = retry_with_backoff([] { return 42; }, RetryPolicy{}, rng,
                                   &stats);
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(stats.succeeded);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.total_backoff, 0.0);
}

TEST(Retry, TransientFailureIsAbsorbed) {
  Rng rng(1);
  RetryStats stats;
  int calls = 0;
  retry_with_backoff(
      [&] {
        if (++calls < 3) throw std::runtime_error("transient");
      },
      RetryPolicy{.max_attempts = 5}, rng, &stats);
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(stats.succeeded);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_GT(stats.total_backoff, 0.0);
}

TEST(Retry, ExhaustionRethrowsLastError) {
  Rng rng(1);
  RetryStats stats;
  int calls = 0;
  EXPECT_THROW(retry_with_backoff(
                   [&] {
                     ++calls;
                     throw std::runtime_error("persistent #" +
                                              std::to_string(calls));
                   },
                   RetryPolicy{.max_attempts = 3}, rng, &stats),
               std::runtime_error);
  EXPECT_EQ(calls, 3);
  EXPECT_FALSE(stats.succeeded);
  EXPECT_EQ(stats.failures, 3u);
  EXPECT_EQ(stats.last_error, "persistent #3");
}

TEST(Retry, ContractViolationIsNeverRetried) {
  Rng rng(1);
  int calls = 0;
  EXPECT_THROW(retry_with_backoff(
                   [&]() -> int {
                     ++calls;
                     STAC_REQUIRE_MSG(false, "bug, not weather");
                     return 0;
                   },
                   RetryPolicy{.max_attempts = 5}, rng),
               ContractViolation);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, BackoffGrowsExponentiallyAndCaps) {
  const RetryPolicy policy{.initial_backoff = 1.0,
                           .backoff_multiplier = 2.0,
                           .max_backoff = 4.0,
                           .jitter_fraction = 0.0};
  Rng rng(1);
  EXPECT_EQ(backoff_before_attempt(policy, 1, rng), 0.0);
  EXPECT_DOUBLE_EQ(backoff_before_attempt(policy, 2, rng), 1.0);
  EXPECT_DOUBLE_EQ(backoff_before_attempt(policy, 3, rng), 2.0);
  EXPECT_DOUBLE_EQ(backoff_before_attempt(policy, 4, rng), 4.0);
  EXPECT_DOUBLE_EQ(backoff_before_attempt(policy, 5, rng), 4.0);  // capped
}

TEST(Retry, JitterIsDeterministicGivenSeed) {
  const RetryPolicy policy{.max_attempts = 6,
                           .initial_backoff = 0.5,
                           .jitter_fraction = 0.25};
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    RetryStats stats;
    EXPECT_THROW(retry_with_backoff(
                     [] { throw std::runtime_error("always"); }, policy, rng,
                     &stats),
                 std::runtime_error);
    return stats.total_backoff;
  };
  const double a = run(7);
  const double b = run(7);
  const double c = run(8);
  EXPECT_DOUBLE_EQ(a, b);  // same seed -> identical schedule
  EXPECT_NE(a, c);         // different seed -> different jitter
}

TEST(Retry, JitterStaysWithinFraction) {
  const RetryPolicy policy{.initial_backoff = 1.0,
                           .backoff_multiplier = 1.0,
                           .jitter_fraction = 0.1};
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double wait = backoff_before_attempt(policy, 2, rng);
    EXPECT_GE(wait, 0.9);
    EXPECT_LT(wait, 1.1);
  }
}

TEST(Retry, DeadlineBudgetStopsRetrying) {
  // Waits would be 1 + 2 + 4 + ...; a deadline of 2.5 admits only the first
  // backoff, so exactly two attempts run.
  const RetryPolicy policy{.max_attempts = 10,
                           .initial_backoff = 1.0,
                           .backoff_multiplier = 2.0,
                           .jitter_fraction = 0.0,
                           .deadline = 2.5};
  Rng rng(1);
  RetryStats stats;
  EXPECT_THROW(
      retry_with_backoff([] { throw std::runtime_error("always"); }, policy,
                         rng, &stats),
      std::runtime_error);
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_TRUE(stats.deadline_exhausted);
  EXPECT_FALSE(stats.succeeded);
  EXPECT_DOUBLE_EQ(stats.total_backoff, 1.0);  // the rejected wait uncharged
}

TEST(Retry, VoidAndValueReturnsBothWork) {
  Rng rng(1);
  bool ran = false;
  retry_with_backoff([&] { ran = true; }, RetryPolicy{}, rng);
  EXPECT_TRUE(ran);
  const std::string s = retry_with_backoff(
      [] { return std::string("ok"); }, RetryPolicy{}, rng);
  EXPECT_EQ(s, "ok");
}

TEST(Retry, ZeroJitterScheduleIsExact) {
  const RetryPolicy policy{.max_attempts = 4,
                           .initial_backoff = 1.0,
                           .backoff_multiplier = 3.0,
                           .max_backoff = 100.0,
                           .jitter_fraction = 0.0};
  Rng rng(1);
  RetryStats stats;
  EXPECT_THROW(
      retry_with_backoff([] { throw std::runtime_error("always"); }, policy,
                         rng, &stats),
      std::runtime_error);
  EXPECT_DOUBLE_EQ(stats.total_backoff, 1.0 + 3.0 + 9.0);
}

}  // namespace
}  // namespace stac

#include "common/fault_injection.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace stac {
namespace {

TEST(FaultInjection, UnarmedInjectorIsInert) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed());
  const auto out = inj.evaluate("cat.apply");
  EXPECT_EQ(out.action, FaultAction::kNone);
  EXPECT_FALSE(static_cast<bool>(out));
  EXPECT_NO_THROW(inj.check("cat.apply"));
  // Unarmed hits are not even counted (fast path).
  EXPECT_EQ(inj.stats("cat.apply").hits, 0u);
}

TEST(FaultInjection, EveryNthFiresDeterministically) {
  FaultInjector inj;
  FaultPlan plan;
  plan.add({.point = "cat.apply",
            .action = FaultAction::kThrow,
            .every_nth = 3});
  inj.arm(plan);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i)
    fired.push_back(static_cast<bool>(inj.evaluate("cat.apply")));
  const std::vector<bool> expect = {false, false, true, false, false,
                                    true,  false, false, true};
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(inj.stats("cat.apply").hits, 9u);
  EXPECT_EQ(inj.stats("cat.apply").injected, 3u);
}

TEST(FaultInjection, ProbabilityScheduleIsSeedStable) {
  auto schedule = [](std::uint64_t seed) {
    FaultInjector inj;
    FaultPlan plan;
    plan.seed = seed;
    plan.add({.point = "profiler.sample",
              .action = FaultAction::kDrop,
              .probability = 0.3});
    inj.arm(plan);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i)
      fired.push_back(static_cast<bool>(inj.evaluate("profiler.sample")));
    return fired;
  };
  EXPECT_EQ(schedule(11), schedule(11));  // same seed, same schedule
  EXPECT_NE(schedule(11), schedule(12));
}

TEST(FaultInjection, ExplicitKeyMakesDecisionOrderIndependent) {
  // With caller-supplied keys the decision for a given key is identical no
  // matter how many other hits interleave — the property parallel call
  // sites rely on.
  FaultPlan plan;
  plan.seed = 5;
  plan.add({.point = "model.predict",
            .action = FaultAction::kThrow,
            .probability = 0.5});
  FaultInjector a;
  a.arm(plan);
  FaultInjector b;
  b.arm(plan);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; k <= 64; ++k) keys.push_back(fault_key(k));
  std::vector<bool> forward;
  for (const auto k : keys)
    forward.push_back(static_cast<bool>(a.evaluate("model.predict", k)));
  std::vector<bool> reversed(keys.size());
  for (std::size_t i = keys.size(); i-- > 0;)
    reversed[i] = static_cast<bool>(b.evaluate("model.predict", keys[i]));
  EXPECT_EQ(forward, reversed);
}

TEST(FaultInjection, ProbabilityRoughlyMatchesRate) {
  FaultInjector inj;
  FaultPlan plan;
  plan.seed = 99;
  plan.add({.point = "io.load_profile",
            .action = FaultAction::kThrow,
            .probability = 0.1});
  inj.arm(plan);
  int fired = 0;
  for (int i = 0; i < 2000; ++i)
    if (inj.evaluate("io.load_profile")) ++fired;
  EXPECT_GT(fired, 120);  // ~200 expected; generous band
  EXPECT_LT(fired, 300);
}

TEST(FaultInjection, HitWindowLimitsRule) {
  FaultInjector inj;
  FaultPlan plan;
  plan.add({.point = "cat.apply",
            .action = FaultAction::kThrow,
            .every_nth = 1,
            .from_hit = 3,
            .until_hit = 5});
  inj.arm(plan);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i)
    fired.push_back(static_cast<bool>(inj.evaluate("cat.apply")));
  const std::vector<bool> expect = {false, false, true, true, false, false};
  EXPECT_EQ(fired, expect);
}

TEST(FaultInjection, CheckThrowsInjectedFaultWithMessage) {
  FaultInjector inj;
  FaultPlan plan;
  plan.add({.point = "cat.apply",
            .action = FaultAction::kThrow,
            .every_nth = 1,
            .message = "MSR write failed"});
  inj.arm(plan);
  try {
    inj.check("cat.apply");
    FAIL() << "should have thrown";
  } catch (const InjectedFault& e) {
    EXPECT_STREQ(e.what(), "MSR write failed");
  }
  // Default message names the point.
  FaultPlan plan2;
  plan2.add({.point = "model.fit",
             .action = FaultAction::kThrow,
             .every_nth = 1});
  inj.arm(plan2);
  try {
    inj.check("model.fit");
    FAIL() << "should have thrown";
  } catch (const InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("model.fit"), std::string::npos);
  }
}

TEST(FaultInjection, InjectedFaultIsNotAContractViolation) {
  // The whole resilience design hangs on this type split.
  FaultInjector inj;
  FaultPlan plan;
  plan.add(
      {.point = "x", .action = FaultAction::kThrow, .every_nth = 1});
  inj.arm(plan);
  try {
    inj.check("x");
    FAIL() << "should have thrown";
  } catch (const std::logic_error&) {
    FAIL() << "InjectedFault must not be a logic_error";
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(FaultInjection, NonThrowActionsCarryParameters) {
  FaultInjector inj;
  FaultPlan plan;
  plan.add({.point = "testbed.service",
            .action = FaultAction::kLatency,
            .every_nth = 1,
            .latency = 0.75});
  plan.add({.point = "profiler.sample",
            .action = FaultAction::kCorrupt,
            .every_nth = 1,
            .corrupt_factor = 16.0});
  inj.arm(plan);
  const auto lat = inj.check("testbed.service");  // check() only throws kThrow
  EXPECT_EQ(lat.action, FaultAction::kLatency);
  EXPECT_DOUBLE_EQ(lat.latency, 0.75);
  const auto cor = inj.evaluate("profiler.sample");
  EXPECT_EQ(cor.action, FaultAction::kCorrupt);
  EXPECT_DOUBLE_EQ(cor.corrupt_factor, 16.0);
}

TEST(FaultInjection, FirstMatchingRuleWins) {
  FaultInjector inj;
  FaultPlan plan;
  plan.add({.point = "p", .action = FaultAction::kDrop, .every_nth = 2});
  plan.add({.point = "p", .action = FaultAction::kThrow, .every_nth = 1});
  inj.arm(plan);
  EXPECT_EQ(inj.evaluate("p").action, FaultAction::kThrow);  // hit 1: rule 2
  EXPECT_EQ(inj.evaluate("p").action, FaultAction::kDrop);   // hit 2: rule 1
}

TEST(FaultInjection, StatsAndResetAccounting) {
  FaultInjector inj;
  FaultPlan plan;
  plan.add({.point = "a", .action = FaultAction::kDrop, .every_nth = 2});
  plan.add({.point = "b", .action = FaultAction::kDrop, .every_nth = 1});
  inj.arm(plan);
  for (int i = 0; i < 4; ++i) (void)inj.evaluate("a");
  (void)inj.evaluate("b");
  EXPECT_EQ(inj.stats("a").hits, 4u);
  EXPECT_EQ(inj.stats("a").injected, 2u);
  EXPECT_EQ(inj.stats("b").injected, 1u);
  EXPECT_EQ(inj.total_injected(), 3u);
  inj.reset_counters();
  EXPECT_EQ(inj.stats("a").hits, 0u);
  EXPECT_EQ(inj.total_injected(), 0u);
}

TEST(FaultInjection, FaultScopeArmsAndCleansUpGlobal) {
  ASSERT_FALSE(FaultInjector::global().armed());
  {
    FaultPlan plan;
    plan.add({.point = "scope.test",
              .action = FaultAction::kDrop,
              .every_nth = 1});
    FaultScope scope(plan);
    EXPECT_TRUE(FaultInjector::global().armed());
    EXPECT_TRUE(static_cast<bool>(FaultInjector::global().evaluate(
        "scope.test")));
    scope.disarm();
    EXPECT_FALSE(FaultInjector::global().armed());
  }
  EXPECT_FALSE(FaultInjector::global().armed());
  EXPECT_EQ(FaultInjector::global().stats("scope.test").hits, 0u);
}

TEST(FaultInjection, FaultKeyIsStableAndNonzero) {
  EXPECT_EQ(fault_key(1, 2, 3), fault_key(1, 2, 3));
  EXPECT_NE(fault_key(1, 2, 3), fault_key(3, 2, 1));
  EXPECT_NE(fault_key(std::uint64_t{42}), 0u);
  const double xs[] = {1.0, 2.5};
  EXPECT_EQ(fault_key_hash(xs, sizeof(xs)), fault_key_hash(xs, sizeof(xs)));
}

}  // namespace
}  // namespace stac

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace stac {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForPartialRange) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ThreadPool, TaskExceptionPropagatesFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool keeps working after an exception.
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::global().parallel_for(0, 64, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // parallel_for from a pool worker must not enqueue onto the same pool —
  // with every worker blocked waiting, that deadlocks.  Nest two deep on a
  // single-thread pool: any deadlock hangs the test, and the counts prove
  // every index of every level still ran exactly once.
  ThreadPool pool(1);
  std::vector<std::atomic<int>> outer_hits(4);
  std::atomic<int> inner_hits{0};
  std::atomic<int> innermost_hits{0};
  pool.parallel_for(0, 4, [&](std::size_t i) {
    ++outer_hits[i];
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for(0, 3, [&](std::size_t) {
      ++inner_hits;
      pool.parallel_for(0, 2, [&](std::size_t) { ++innermost_hits; });
    });
  });
  for (const auto& h : outer_hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(inner_hits.load(), 4 * 3);
  EXPECT_EQ(innermost_hits.load(), 4 * 3 * 2);
}

TEST(ThreadPool, OnWorkerThreadFalseOutsidePool) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<bool> saw_worker{false};
  pool.submit([&] { saw_worker = pool.on_worker_thread(); });
  pool.wait_idle();
  EXPECT_TRUE(saw_worker.load());
}

TEST(ThreadPool, NestedParallelForAcrossDistinctPools) {
  // A worker of pool A may still fan out on pool B; only same-pool nesting
  // collapses to inline execution.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> count{0};
  outer.parallel_for(0, 4, [&](std::size_t) {
    inner.parallel_for(0, 8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ThreadsFromEnvAcceptsPlainIntegers) {
  EXPECT_EQ(ThreadPool::threads_from_env("8"), 8u);
  EXPECT_EQ(ThreadPool::threads_from_env("1"), 1u);
  EXPECT_EQ(ThreadPool::threads_from_env("1024"), 1024u);
  // Surrounding whitespace is tolerated (shell-quoted exports).
  EXPECT_EQ(ThreadPool::threads_from_env("  8  "), 8u);
  EXPECT_EQ(ThreadPool::threads_from_env("\t4"), 4u);
}

TEST(ThreadPool, ThreadsFromEnvRejectsUnsetAndEmpty) {
  // 0 is the "fall back to hardware concurrency" sentinel the pool
  // constructor understands.
  EXPECT_EQ(ThreadPool::threads_from_env(nullptr), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env(""), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("   "), 0u);
}

TEST(ThreadPool, ThreadsFromEnvRejectsNonNumeric) {
  EXPECT_EQ(ThreadPool::threads_from_env("abc"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("8abc"), 0u);   // trailing junk
  EXPECT_EQ(ThreadPool::threads_from_env("3.5"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("0x10"), 0u);
}

TEST(ThreadPool, ThreadsFromEnvRejectsZeroAndNegative) {
  EXPECT_EQ(ThreadPool::threads_from_env("0"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("-4"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("-1"), 0u);
}

TEST(ThreadPool, ThreadsFromEnvRejectsHugeValues) {
  // A fat-fingered export must not spawn thousands of threads (or wrap).
  EXPECT_EQ(ThreadPool::threads_from_env("1025"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("999999"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("18446744073709551616"), 0u);  // 2^64
  EXPECT_EQ(ThreadPool::threads_from_env("99999999999999999999999999"), 0u);
}

TEST(ThreadPool, ConstructorZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(),
            std::max(1u, std::thread::hardware_concurrency()));
}

TEST(ThreadPool, NestedWorkFromManySubmitters) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 500);
}

}  // namespace
}  // namespace stac

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace stac {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForPartialRange) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ThreadPool, TaskExceptionPropagatesFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool keeps working after an exception.
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::global().parallel_for(0, 64, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, NestedWorkFromManySubmitters) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 500);
}

}  // namespace
}  // namespace stac
